// The declarative ruleset: which packages live in the simulated-clock
// domain, the import DAG the layering analyzer enforces, and which
// analyzers apply where. cmd/flarevet and the tree-wide regression test
// both read this table, so "the rules" exist in exactly one place.
package lint

import (
	"fmt"
	"strings"
)

// ModulePath is this module's import path prefix.
const ModulePath = "github.com/flare-sim/flare"

// ObsPackage is the telemetry package whose Event schema must stay
// single-sourced.
const ObsPackage = ModulePath + "/internal/obs"

// SimClockPackages are the packages that run under the simulated TTI
// clock and must replay byte-identically: any wall-clock read,
// unordered map iteration, or global-RNG draw inside them silently
// breaks the FF-on/FF-off equivalence and golden determinism that PRs
// 2-3 proved. Subpackages inherit membership.
var SimClockPackages = []string{
	ModulePath + "/internal/cellsim", // engine (covers cellsim/driver)
	ModulePath + "/internal/core",    // solver + Algorithm 1
	ModulePath + "/internal/lte",     // radio model
	ModulePath + "/internal/sim",     // event kernel + clock
	ModulePath + "/internal/transport",
	ModulePath + "/internal/has", // players
}

// IsSimClock reports whether pkgPath is inside the sim-clock domain.
func IsSimClock(pkgPath string) bool {
	for _, p := range SimClockPackages {
		if pathMatches(p, pkgPath) {
			return true
		}
	}
	return false
}

// A LayerRule forbids a package subtree (Scope, prefix match) from
// importing the Forbid subtrees, except for the Except subtrees.
// Reason is shown in the diagnostic.
type LayerRule struct {
	Scope  string
	Forbid []string
	Except []string
	Reason string
}

// internalPrefix abbreviates rule entries below.
const internalPrefix = ModulePath + "/internal/"

// LayerRules is the import DAG, bottom layer first. The low layers are
// allow-listed (everything in-module is forbidden except the named
// dependencies); the cross-cutting rules at the end pin the two
// architectural boundaries PR 2 and PR 4 introduced: drivers reach the
// engine only through the narrow Engine view, and the sim/radio/player
// layers publish telemetry through observer hooks rather than by
// importing obs.
var LayerRules = []LayerRule{
	{
		Scope:  internalPrefix + "sim",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "sim"},
		Reason: "the event kernel is the bottom layer and imports nothing in-module",
	},
	{
		Scope:  internalPrefix + "lte",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "lte", internalPrefix + "sim"},
		Reason: "the radio model sits directly on the kernel",
	},
	{
		Scope:  internalPrefix + "transport",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "transport", internalPrefix + "lte", internalPrefix + "sim"},
		Reason: "transport rides on the radio model only",
	},
	{
		Scope:  internalPrefix + "has",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "has", internalPrefix + "transport", internalPrefix + "lte", internalPrefix + "sim"},
		Reason: "players know segments and flows, not schemes or telemetry",
	},
	{
		Scope:  internalPrefix + "abr",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "abr", internalPrefix + "has", internalPrefix + "lte", internalPrefix + "metrics", internalPrefix + "sim"},
		Reason: "client ABR logic must stay engine- and telemetry-free",
	},
	{
		Scope:  internalPrefix + "faults",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "faults", internalPrefix + "sim"},
		Reason: "the fault injector publishes through observer hooks, not obs",
	},
	{
		Scope:  internalPrefix + "core",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "core", internalPrefix + "has", internalPrefix + "lte", internalPrefix + "obs", internalPrefix + "sim"},
		Reason: "the controller consumes ladders and radio constants; it never reaches up into engines or servers",
	},
	{
		Scope:  internalPrefix + "obs",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "obs"},
		Reason: "obs is pure telemetry: importing a sim package would invert the observer direction and invite cycles",
	},
	{
		Scope:  internalPrefix + "metrics",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "metrics"},
		Reason: "metrics renderers are a leaf utility",
	},
	{
		Scope:  internalPrefix + "qoe",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "qoe"},
		Reason: "the QoE model is a leaf utility",
	},
	{
		Scope:  internalPrefix + "cellsim/driver",
		Forbid: []string{internalPrefix + "cellsim"},
		Except: []string{internalPrefix + "cellsim/driver"},
		Reason: "drivers touch the engine only through the narrow driver.Engine view (PR 2); importing the engine package would collapse the seam",
	},
	{
		Scope:  internalPrefix + "oneapi",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "oneapi", internalPrefix + "core", internalPrefix + "has", internalPrefix + "obs", internalPrefix + "sim"},
		Reason: "the control plane serves simulations and live clients alike: the controller, ladders, telemetry, and the worker pool — never the engine (cellsim reaching in would make the server simulation-shaped)",
	},
	{
		Scope:  internalPrefix + "loadgen",
		Forbid: []string{ModulePath},
		Except: []string{internalPrefix + "loadgen", internalPrefix + "oneapi", internalPrefix + "core", internalPrefix + "has", internalPrefix + "obs"},
		Reason: "the load driver speaks to the control plane over its wire client only; importing cellsim would entangle load generation with the engine",
	},
	{
		Scope:  internalPrefix + "flaresuite",
		Forbid: []string{ModulePath},
		Except: []string{
			internalPrefix + "flaresuite",
			internalPrefix + "cellsim", internalPrefix + "experiments",
			internalPrefix + "faults", internalPrefix + "has",
			internalPrefix + "lte", internalPrefix + "metrics",
			internalPrefix + "obs", internalPrefix + "sim",
		},
		Reason: "the scenario harness compiles axes to engine configs and wraps experiment reports; it must never see oneapi wire internals or the load driver",
	},
	{
		Scope:  ModulePath + "/cmd/flaresuite",
		Forbid: []string{ModulePath},
		Except: []string{
			ModulePath + "/cmd/flaresuite",
			internalPrefix + "flaresuite",
			internalPrefix + "buildinfo", internalPrefix + "graceful",
		},
		Reason: "the suite CLI is flag parsing over the flaresuite API (plus -version and signal drain); engine or experiment imports belong behind the harness",
	},
}

// pathMatches reports whether path is pattern or inside its subtree.
func pathMatches(pattern, path string) bool {
	return path == pattern || strings.HasPrefix(path, pattern+"/")
}

// DirectiveCheck is the directive grammar and waiver audit. Its work —
// rejecting bare //flare:allow, misplaced //flare:hotpath, and stale
// waivers no analyzer consumed — is performed by the runner itself
// (lint.Run / FactStore.StaleWaivers), because it must see every other
// analyzer's suppressions; it is registered here so the suite's table
// (flarevet -help-analyzers, the eight-analyzer help test) describes
// everything that can produce a finding.
var DirectiveCheck = &Analyzer{
	Name: "directive",
	Doc: "validates //flare:allow <reason> and //flare:hotpath grammar, and reports stale " +
		"//flare:allow directives that no longer suppress any finding (whole-module runs only)",
	Run: func(*Pass) {},
}

// Analyzers returns the full suite — all eight analyzers — in
// reporting order. This table is the single registry: -help-analyzers
// and the help-coverage test are generated from it.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism, SeedPurity,
		Layering, Hotpath, ObsDiscipline,
		LockOrder, SlotWrite,
		DirectiveCheck,
	}
}

// AnalyzersFor selects the analyzers that apply to pkgPath: layering,
// hotpath, obsdiscipline, lockorder, slotwrite, and the directive audit
// run everywhere; determinism and seedpurity only inside the sim-clock
// domain (live servers and CLIs may read the wall clock, and may seed
// jitter however they like).
func AnalyzersFor(pkgPath string) []*Analyzer {
	as := []*Analyzer{Layering, Hotpath, ObsDiscipline, LockOrder, SlotWrite, DirectiveCheck}
	if IsSimClock(pkgPath) {
		as = append([]*Analyzer{Determinism, SeedPurity}, as...)
	}
	return as
}

// AnalyzerHelp renders the registered analyzer table for
// `flarevet -help-analyzers` — generated from Analyzers() so the CLI
// can never drift from the registry.
func AnalyzerHelp() string {
	var b strings.Builder
	for _, a := range Analyzers() {
		fmt.Fprintf(&b, "%s\n    %s\n\n", a.Name, a.Doc)
	}
	return b.String()
}
