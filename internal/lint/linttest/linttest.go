// Package linttest is the analysistest counterpart for the flarevet
// suite: it loads a fixture package from a testdata directory, runs one
// or more analyzers over it, and checks the produced diagnostics
// against `// want "regexp"` comments in the fixture sources.
//
// Matching rules follow x/tools analysistest: a want comment applies to
// its own line; multiple expectations may share one comment
// (`// want "a" "b"`); each expectation is a regular expression matched
// against the diagnostic message; every diagnostic must be wanted and
// every want must be matched.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/flare-sim/flare/internal/lint"
)

// Run loads dir as a package named pkgPath, applies the analyzers
// (plus the runner's built-in directive checks), and asserts the
// diagnostics equal the fixture's want comments.
func Run(t *testing.T, dir, pkgPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags := lint.Run(pkg, analyzers)

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("parse want comments: %v", err)
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !claim(wants[key], d.Message) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.claimed {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	claimed bool
}

// claim marks the first unclaimed matching expectation.
func claim(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.claimed && w.re.MatchString(msg) {
			w.claimed = true
			return true
		}
	}
	return false
}

// collectWants extracts `// want "re"...` comments, keyed by file:line.
func collectWants(pkg *lint.Package) (map[string][]*want, error) {
	out := map[string][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest := wantText(c.Text)
				if rest == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want expectation %q", key, rest)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: unquote %s: %w", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: compile %q: %w", key, pat, err)
					}
					out[key] = append(out[key], &want{re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return out, nil
}

// wantText extracts the expectation list from a comment, or "". Both
// forms are accepted: a `// want "re"...` line comment, and a
// `/* want "re"... */` block comment — the latter exists so a fixture
// can attach an expectation to a line whose finding is itself a
// malformed line-comment directive (only one line comment fits a line).
func wantText(text string) string {
	if strings.HasPrefix(text, "/*") {
		body := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"))
		if rest, ok := strings.CutPrefix(body, "want "); ok {
			return strings.TrimSpace(rest)
		}
		return ""
	}
	if idx := strings.Index(text, "// want "); idx >= 0 {
		return strings.TrimSpace(text[idx+len("// want "):])
	}
	return ""
}
