// The declared lock hierarchy. PR 8 sharded the OneAPI control plane
// and established, by convention and comment, a strict acquisition
// order for its mutexes; this table is that convention made
// machine-readable, and the lockorder analyzer enforces it: while any
// ranked lock is held, only strictly lower-ranked locks may be
// acquired. Acquiring an equal rank is also a finding — that is
// exactly the Handover both-cells case, where the code must impose a
// global order (cell ID) itself and say so with a reasoned
// //flare:allow.
package lint

import (
	"fmt"
	"path"
)

// A LockClass names one mutex in the hierarchy: the Field of a struct
// Type in package Pkg (Type == "" for a package-level mutex variable).
// Higher Rank is acquired first. Mutexes not listed here are outside
// the hierarchy and unconstrained.
type LockClass struct {
	Pkg   string
	Type  string
	Field string
	Rank  int
	// Doc says what the lock protects and why it sits at this rank.
	Doc string
}

// String renders "pkg.Type.Field" with the package abbreviated.
func (c LockClass) String() string {
	if c.Type == "" {
		return path.Base(c.Pkg) + "." + c.Field
	}
	return fmt.Sprintf("%s.%s.%s", path.Base(c.Pkg), c.Type, c.Field)
}

// LockRanks is the control plane's declared hierarchy, outermost
// first: poolMu > optMu > shard.mu > cellState.mu. cmd/flarevet, the
// tree test, and DESIGN.md §12 all read this table.
var LockRanks = []LockClass{
	{
		Pkg: internalPrefix + "oneapi", Type: "Server", Field: "poolMu", Rank: 40,
		Doc: "serializes RunBAIRounds/Close around the shared BAI worker pool; held across whole rounds, so nothing may hold it while a finer lock is already held",
	},
	{
		Pkg: internalPrefix + "oneapi", Type: "Server", Field: "optMu", Rank: 30,
		Doc: "guards creation-time defaults (recorder, PCEF, wall clock) and orders Set* against cell creation; taken before any shard or cell lock",
	},
	{
		Pkg: internalPrefix + "oneapi", Type: "shard", Field: "mu", Rank: 20,
		Doc: "serializes mutation of one shard's copy-on-write cell index; reads are lock-free, writers take it under optMu and above cell locks",
	},
	{
		Pkg: internalPrefix + "oneapi", Type: "cellState", Field: "mu", Rank: 10,
		Doc: "one cell's session state; innermost — nothing else may be acquired while it is held, and both-cells operations (Handover) must lock in global cell-ID order",
	},
}
