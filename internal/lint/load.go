// Package loading. flarevet needs parsed-with-comments ASTs plus full
// type information, without depending on golang.org/x/tools/go/packages.
// The loader therefore drives the stock toolchain directly:
//
//  1. `go list -json <patterns>` enumerates the target packages (and
//     their in-module dependency edges) exactly as the build would,
//  2. each target is parsed with go/parser and type-checked with
//     go/types in dependency order, and
//  3. imports outside the target set (the standard library, and module
//     packages a narrow pattern did not select) are satisfied by the
//     stdlib source importer (go/importer "source" mode), which
//     type-checks them from source on demand and caches the results.
//
// The whole module checks in a few seconds; positions and types are the
// compiler's own, so analyzer findings match what `go build` sees.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path (or the fixture name under linttest).
	Path string
	// Dir is the package directory.
	Dir string
	// Fset is the file set shared by every package of one load.
	Fset *token.FileSet
	// Files are the parsed sources, comments included. Test files are
	// deliberately excluded: the invariants flarevet enforces concern
	// shipped code, and tests routinely (and legitimately) use
	// time.Now, map ranges, and hand-built events.
	Files []*ast.File
	// Types and Info are the type-checker outputs.
	Types *types.Package
	Info  *types.Info
	// Target reports whether the package matched the load patterns
	// (as opposed to being pulled in as an in-module dependency so
	// that facts and types are exact). Diagnostics are printed for
	// target packages only; the stale-waiver audit runs only when
	// every loaded package is a target.
	Target bool
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// LoadPackages loads, parses, and type-checks the packages matching the
// `go list` patterns, rooted at dir (the module root for "./...").
// Packages are returned in dependency order.
//
// For narrow patterns (anything but the whole module), the in-module
// dependency closure is loaded too, marked Target=false: the dataflow
// analyzers need dependency-package facts (hotpath summaries, seed
// sinks) for a narrow run to agree with the whole-module run, and the
// shared loader is faster than re-checking each dependency through the
// source importer anyway.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wholeModule := len(patterns) == 1 && patterns[0] == "./..."

	listed, err := goList(dir, false, patterns)
	if err != nil {
		return nil, err
	}
	targets := make(map[string]bool, len(listed))
	for _, lp := range listed {
		targets[lp.ImportPath] = true
	}
	if !wholeModule {
		// Widen to the in-module dependency closure.
		deps, err := goList(dir, true, patterns)
		if err != nil {
			return nil, err
		}
		merged := listed[:0]
		for _, lp := range deps {
			if strings.HasPrefix(lp.ImportPath, ModulePath) {
				merged = append(merged, lp)
			}
		}
		listed = merged
	}

	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}

	// Topological order over the in-target import edges, so a chained
	// importer can always serve in-target dependencies from cache.
	var order []*listedPackage
	state := make(map[string]int, len(listed)) // 0 new, 1 visiting, 2 done
	var visit func(lp *listedPackage) error
	visit = func(lp *listedPackage) error {
		switch state[lp.ImportPath] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("lint: import cycle through %s", lp.ImportPath)
		}
		state[lp.ImportPath] = 1
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[lp.ImportPath] = 2
		order = append(order, lp)
		return nil
	}
	for _, lp := range listed {
		if err := visit(lp); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	chain := &chainImporter{
		local:    make(map[string]*types.Package, len(order)),
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	out := make([]*Package, 0, len(order))
	for _, lp := range order {
		pkg, err := checkPackage(fset, chain, lp)
		if err != nil {
			return nil, err
		}
		pkg.Target = targets[lp.ImportPath]
		chain.local[lp.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads a single directory as a standalone package named
// pkgPath — the analysistest-style entry point for fixture packages
// under testdata (which `go list` cannot see). Imports resolve through
// the source importer, so fixtures may import both the standard library
// and real module packages.
func LoadDir(dir, pkgPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	if len(matches) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []string
	for _, m := range matches {
		files = append(files, filepath.Base(m))
	}
	fset := token.NewFileSet()
	chain := &chainImporter{
		local:    map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	pkg, err := checkPackage(fset, chain, &listedPackage{
		ImportPath: pkgPath,
		Dir:        dir,
		GoFiles:    files,
	})
	if err != nil {
		return nil, err
	}
	pkg.Target = true
	return pkg, nil
}

// goList shells out to `go list -json` (optionally -deps for the
// transitive closure) and decodes the package stream.
func goList(dir string, deps bool, patterns []string) ([]*listedPackage, error) {
	args := []string{"list", "-json=ImportPath,Dir,Name,GoFiles,Imports,Error"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(append(args, "--"), patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue // test-only packages and the like
		}
		out = append(out, lp)
	}
	return out, nil
}

// checkPackage parses and type-checks one package.
func checkPackage(fset *token.FileSet, imp types.ImporterFrom, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// chainImporter serves already-checked target packages from cache and
// everything else (stdlib, unselected module packages) from the source
// importer.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.ImporterFrom
}

// Import implements types.Importer.
func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.ImportFrom(path, dir, mode)
}
