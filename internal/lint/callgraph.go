// The intra-package call graph and the call classifier the dataflow
// analyzers (lockorder, seedpurity, slotwrite, hotpath v2) share.
//
// Resolution is static and honest about its limits: a call is either
// resolved to the single *types.Func it must invoke (package functions,
// concrete methods — including cross-package ones, whose identity the
// loader preserves), identified as an interface method call (the callee
// set is open; analyzers report or ignore the frontier explicitly), or
// dynamic (function values, builtins, conversions) and skipped. No
// points-to analysis is attempted: the invariants flarevet enforces are
// conventions about how this tree is written, and the tree is written
// to be resolvable.
package lint

import (
	"go/ast"
	"go/types"
)

// callGraph indexes one package's function declarations.
type callGraph struct {
	// decls lists every function/method with a body, in source order
	// (file order, then declaration order) — analyzers iterate this
	// for deterministic reporting.
	decls []*ast.FuncDecl
	// funcOf maps a declaration to its type-checker object; declOf is
	// the inverse.
	funcOf map[*ast.FuncDecl]*types.Func
	declOf map[*types.Func]*ast.FuncDecl
}

// buildCallGraph indexes the pass's package.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{
		funcOf: make(map[*ast.FuncDecl]*types.Func),
		declOf: make(map[*types.Func]*ast.FuncDecl),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls = append(g.decls, fd)
			g.funcOf[fd] = fn
			g.declOf[fn] = fd
		}
	}
	return g
}

// callKind classifies a call expression's resolution.
type callKind int

const (
	// callStatic: the callee is the returned *types.Func, always.
	callStatic callKind = iota
	// callInterface: an interface method; the dynamic callee is
	// unknowable without whole-program analysis. The returned
	// *types.Func is the interface method object (for naming).
	callInterface
	// callDynamic: function value, builtin, or conversion — no callee.
	callDynamic
)

// classifyCall resolves who call invokes.
func classifyCall(info *types.Info, call *ast.CallExpr) (*types.Func, callKind) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn, callStatic
		}
		return nil, callDynamic // func-typed variable, builtin, conversion
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil, callDynamic // func-typed struct field
			}
			fn := sel.Obj().(*types.Func)
			if isInterfaceMethod(fn) {
				return fn, callInterface
			}
			return fn, callStatic
		}
		// No Selection: a package-qualified identifier pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if isInterfaceMethod(fn) {
				return fn, callInterface
			}
			return fn, callStatic
		}
		return nil, callDynamic
	}
	return nil, callDynamic
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// deref strips one level of pointerness.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type behind t (through one pointer), or
// nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// rootIdent returns the leftmost identifier of a selector/index/slice
// chain (x in x.f[i].g), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
