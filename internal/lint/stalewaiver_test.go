package lint_test

import (
	"testing"

	"github.com/flare-sim/flare/internal/lint"
	"github.com/flare-sim/flare/internal/lint/linttest"
)

// TestStaleWaiver checks the directive hygiene rule: a //flare:allow
// consumed by the finding it suppresses is healthy, while one that
// suppresses nothing is reported — the audit lint.Run (and the
// whole-module session in cmd/flarevet) appends after suppression, so
// a stale waiver can never excuse its own staleness.
func TestStaleWaiver(t *testing.T) {
	linttest.Run(t, "testdata/stalewaiver", "fixture/stalefix", lint.Hotpath)
}
