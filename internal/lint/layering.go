package lint

import "strconv"

// Layering enforces the import DAG declared in LayerRules. It is purely
// syntactic — import declarations against path patterns — so a
// violation is reported at the offending import spec the moment it is
// written, not when a cycle or an initialization-order surprise bites
// at link time.
var Layering = NewLayering(LayerRules)

// NewLayering builds a layering analyzer over an explicit ruleset
// (tests use fixture-local rules; the tree uses LayerRules).
func NewLayering(rules []LayerRule) *Analyzer {
	a := &Analyzer{
		Name: "layering",
		Doc:  "enforces the declarative import DAG in internal/lint/rules.go (e.g. has/abr/faults never import obs; drivers never import the engine; obs imports no sim package)",
	}
	a.Run = func(pass *Pass) {
		for _, rule := range rules {
			if !pathMatches(rule.Scope, pass.PkgPath) {
				continue
			}
			for _, file := range pass.Files {
				for _, imp := range file.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if !forbidden(rule, path) {
						continue
					}
					pass.Reportf(imp.Pos(),
						"%s must not import %s: %s", pass.PkgPath, path, rule.Reason)
				}
			}
		}
	}
	return a
}

// forbidden reports whether path violates rule.
func forbidden(rule LayerRule, path string) bool {
	hit := false
	for _, f := range rule.Forbid {
		if pathMatches(f, path) {
			hit = true
			break
		}
	}
	if !hit {
		return false
	}
	for _, e := range rule.Except {
		if pathMatches(e, path) {
			return false
		}
	}
	return true
}
