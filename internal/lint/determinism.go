package lint

import (
	"go/ast"
	"go/types"
)

// Determinism flags the three constructs that break byte-exact replay
// when they appear inside the sim-clock domain:
//
//   - `range` over a map: iteration order is deliberately randomized by
//     the runtime, so anything the loop feeds into state or output
//     diverges between runs. Iterate a sorted key slice instead, or
//     annotate the loop with //flare:allow <reason> if the body is
//     provably order-independent.
//   - time.Now / time.Since: wall-clock reads inside simulated time.
//     Route the value through an injected clock (see
//     core.Controller.SetWallClock) or annotate why the reading is
//     observational only.
//   - the global math/rand source (rand.Intn, rand.Float64, ...):
//     draws interleave across goroutines and runs. Use a seeded
//     *rand.Rand owned by the component (internal/sim.RNG).
//
// The analyzer is syntax+types only; it does not attempt to prove that
// a flagged construct actually feeds state. That is what the allow
// directive's mandatory reason is for: the human writes the proof.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbids unordered map ranges, wall-clock reads (time.Now/Since), and " +
		"global math/rand draws in sim-clock packages; suppress only with //flare:allow <reason>",
	Run: runDeterminism,
}

// globalRandAllowed lists math/rand(/v2) functions that do not touch
// the global source: constructors for explicitly-seeded generators.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewPCG":    true,
	"NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.For,
							"range over map %s has unspecified order in a sim-clock package; iterate sorted keys or annotate //flare:allow <reason>", t)
					}
				}
			case *ast.SelectorExpr:
				fn, ok := pass.Info.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods (e.g. (*rand.Rand).Intn) are fine
				}
				switch fn.Pkg().Path() {
				case "time":
					if name := fn.Name(); name == "Now" || name == "Since" {
						pass.Reportf(n.Pos(),
							"time.%s reads the wall clock in a sim-clock package; inject a clock or annotate //flare:allow <reason>", name)
					}
				case "math/rand", "math/rand/v2":
					if !globalRandAllowed[fn.Name()] {
						pass.Reportf(n.Pos(),
							"global math/rand.%s is unseeded shared state in a sim-clock package; use a component-owned seeded *rand.Rand", fn.Name())
					}
				}
			}
			return true
		})
	}
}
