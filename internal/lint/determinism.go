package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism flags the constructs that break byte-exact replay when
// they appear inside the sim-clock domain:
//
//   - `range` over a map: iteration order is deliberately randomized by
//     the runtime, so anything the loop feeds into state or output
//     diverges between runs. Iterate a sorted key slice instead, or
//     annotate the loop with //flare:allow <reason> if the body is
//     provably order-independent.
//   - time.Now / time.Since: wall-clock reads inside simulated time.
//     Route the value through an injected clock (see
//     core.Controller.SetWallClock) or annotate why the reading is
//     observational only.
//   - the global math/rand source (rand.Intn, rand.Float64, ...):
//     draws interleave across goroutines and runs. Use a seeded
//     *rand.Rand owned by the component (internal/sim.RNG).
//   - `go` statements: a spawned goroutine's work completes in
//     scheduler order, so any observable effect it produces is an
//     unordered concurrent reduction unless the caller folds results in
//     a fixed order. The parallel engine's pools are annotated with
//     exactly that argument; new spawn sites must make it too.
//   - sync/atomic mutations (Add/Store/Swap/CompareAndSwap/And/Or,
//     package functions or the atomic type methods): concurrent
//     accumulation into shared words is reduction in arrival order —
//     unordered by definition.
//   - sync.Map methods: a concurrent map has no deterministic iteration
//     or update order.
//
// The analyzer is syntax+types only; it does not attempt to prove that
// a flagged construct actually feeds state. That is what the allow
// directive's mandatory reason is for: the human writes the proof —
// for concurrency sites, the fixed-reduction-order argument.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbids unordered map ranges, wall-clock reads (time.Now/Since), global math/rand draws, " +
		"and unordered concurrent reductions (go statements, sync/atomic mutations, sync.Map) " +
		"in sim-clock packages; suppress only with //flare:allow <reason>",
	Run: runDeterminism,
}

// globalRandAllowed lists math/rand(/v2) functions that do not touch
// the global source: constructors for explicitly-seeded generators.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// atomicMutatorPrefixes match the sync/atomic operations that write:
// package functions (AddInt64, StoreUint32, ...) and the atomic type
// methods (Add, Store, ...) share these name prefixes. Load is absent
// on purpose — a racy read is the writer's finding, not the reader's.
var atomicMutatorPrefixes = []string{"Add", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicMutator(name string) bool {
	for _, p := range atomicMutatorPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// isSyncMapMethod reports whether fn is a method on sync.Map.
func isSyncMapMethod(fn *types.Func, sig *types.Signature) bool {
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Map"
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement spawns scheduler-ordered work in a sim-clock package; fold every observable reduction in a fixed order and annotate //flare:allow <reason> stating that argument")
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.For,
							"range over map %s has unspecified order in a sim-clock package; iterate sorted keys or annotate //flare:allow <reason>", t)
					}
				}
			case *ast.SelectorExpr:
				fn, ok := pass.Info.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				isMethod := sig != nil && sig.Recv() != nil
				switch fn.Pkg().Path() {
				case "time":
					if isMethod {
						return true
					}
					if name := fn.Name(); name == "Now" || name == "Since" {
						pass.Reportf(n.Pos(),
							"time.%s reads the wall clock in a sim-clock package; inject a clock or annotate //flare:allow <reason>", name)
					}
				case "math/rand", "math/rand/v2":
					// Methods (e.g. (*rand.Rand).Intn) are fine: the
					// generator is component-owned and seeded.
					if !isMethod && !globalRandAllowed[fn.Name()] {
						pass.Reportf(n.Pos(),
							"global math/rand.%s is unseeded shared state in a sim-clock package; use a component-owned seeded *rand.Rand", fn.Name())
					}
				case "sync/atomic":
					if isAtomicMutator(fn.Name()) {
						pass.Reportf(n.Pos(),
							"sync/atomic.%s is an unordered concurrent reduction in a sim-clock package; fold results in a fixed order instead or annotate //flare:allow <reason>", fn.Name())
					}
				case "sync":
					if isSyncMapMethod(fn, sig) {
						pass.Reportf(n.Pos(),
							"sync.Map.%s has no deterministic order in a sim-clock package; use an ordinary map with sorted iteration or annotate //flare:allow <reason>", fn.Name())
					}
				}
			}
			return true
		})
	}
}
