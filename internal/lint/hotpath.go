package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpath is the static complement to the AllocsPerRun floors and the
// flarebench simsec/sec gate: functions whose doc comment carries
// //flare:hotpath (the Sim tick loops, the scheduler argmax, the MCKP
// sweep, Bearer.tick, Recorder.Emit) must not contain
//
//   - capturing closures (each capture forces a heap-allocated context;
//     PR 3 replaced the per-ACK closure with a method value for exactly
//     this reason),
//   - fmt printing (reflection, interface boxing, and an implicit
//     []any allocation per call),
//   - string concatenation inside loops (quadratic garbage),
//   - map/slice composite literals inside loops (one heap allocation
//     per iteration), or
//   - defer (per-call bookkeeping, and it hides work at exit).
//
// v2 makes the budget transitive: every function in every analyzed
// package gets an allocation summary (a cross-package fact), and each
// annotated root walks its static call closure, reporting a callee's
// allocation at the callee's site even when the root itself stays
// clean. Interface calls are the closure's frontier: the dynamic
// callee is unknowable, so the call itself is reported as opaque
// unless a reasoned //flare:allow on the call site vouches for the
// implementations. Func-value calls (pre-bound callbacks, the
// scheduler's filter argument) are deliberately silent — binding them
// is the tree's standard de-allocation move and their targets are
// still summarized wherever they are declared.
//
// The benchmark gates catch regressions after the fact on covered
// configs; this analyzer rejects the construct at review time on every
// config.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "forbids capturing closures, fmt printing, in-loop string concatenation and map/slice " +
		"literals, and defer inside functions annotated //flare:hotpath and everything " +
		"statically reachable from them; interface calls on that closure are reported as " +
		"opaque unless waived",
	Run: runHotpath,
}

// hotKind is the allocation-site taxonomy.
type hotKind int

const (
	hotDefer hotKind = iota
	hotClosure
	hotFmt
	hotConcat
	hotLit
	hotIface
)

// hotSite is one allocation (or opacity) site inside a function.
type hotSite struct {
	pos    token.Pos
	kind   hotKind
	detail string // captures list, fmt verb, literal kind, interface method
}

// hotCall is one statically resolved call edge.
type hotCall struct {
	callee *types.Func
}

// hotSummary is the per-function fact the fact store carries across
// packages.
type hotSummary struct {
	name  string // display name, receiver included, package-local
	pkg   *types.Package
	hot   bool
	sites []hotSite
	calls []hotCall
}

func runHotpath(pass *Pass) {
	g := buildCallGraph(pass)

	// Summarize every function (the fact), hot or not.
	var roots []*hotSummary
	for _, fd := range g.decls {
		fn := g.funcOf[fd]
		sum := summarizeHot(pass, fd, fn)
		pass.store.summaries[fn] = sum
		if sum.hot {
			roots = append(roots, sum)
		}
	}

	// Each annotated root reports over its static call closure.
	for _, root := range roots {
		visited := map[*hotSummary]bool{root: true}
		reportHot(pass, root, root, nil, visited)
	}
}

// reportHot emits sum's sites (path is the call chain from root,
// excluding both endpoints' duplication: nil at the root itself) and
// recurses into summarized callees.
func reportHot(pass *Pass, root, sum *hotSummary, path []string, visited map[*hotSummary]bool) {
	for _, site := range sum.sites {
		if !pass.store.claimReport("hotpath", pass.Fset.Position(site.pos)) {
			continue
		}
		pass.Reportf(site.pos, "%s", renderHot(pass, root, sum, site, path))
	}
	for _, call := range sum.calls {
		callee := pass.store.summaries[call.callee]
		if callee == nil || visited[callee] {
			continue
		}
		visited[callee] = true
		sub := make([]string, 0, len(path)+1)
		sub = append(append(sub, path...), displayName(pass, callee))
		reportHot(pass, root, callee, sub, visited)
	}
}

// renderHot formats one finding. Root-level sites keep the v1 message
// shapes; transitive sites name the containing function and the chain
// from the annotated root.
func renderHot(pass *Pass, root, sum *hotSummary, site hotSite, path []string) string {
	if len(path) == 0 {
		switch site.kind {
		case hotDefer:
			return fmt.Sprintf("defer in //flare:hotpath function %s", sum.name)
		case hotClosure:
			return fmt.Sprintf("capturing closure in //flare:hotpath function %s (captures %s); hoist it or use a method value",
				sum.name, site.detail)
		case hotFmt:
			return fmt.Sprintf("fmt.%s in //flare:hotpath function %s", site.detail, sum.name)
		case hotConcat:
			return fmt.Sprintf("string concatenation in loop in //flare:hotpath function %s; use a reused []byte buffer", sum.name)
		case hotLit:
			return fmt.Sprintf("%s literal in loop in //flare:hotpath function %s allocates per iteration; hoist it or reuse a buffer",
				site.detail, sum.name)
		case hotIface:
			return fmt.Sprintf("opaque interface call %s in //flare:hotpath function %s: the allocation budget cannot follow it; waive with //flare:allow <reason> naming the implementations, or devirtualize",
				site.detail, sum.name)
		}
	}
	via := strings.Join(path, " -> ")
	where := displayName(pass, sum)
	rootName := root.name
	switch site.kind {
	case hotDefer:
		return fmt.Sprintf("defer in %s, reachable from //flare:hotpath function %s via %s", where, rootName, via)
	case hotClosure:
		return fmt.Sprintf("capturing closure in %s (captures %s), reachable from //flare:hotpath function %s via %s; hoist it or use a method value",
			where, site.detail, rootName, via)
	case hotFmt:
		return fmt.Sprintf("fmt.%s in %s, reachable from //flare:hotpath function %s via %s", site.detail, where, rootName, via)
	case hotConcat:
		return fmt.Sprintf("string concatenation in loop in %s, reachable from //flare:hotpath function %s via %s; use a reused []byte buffer",
			where, rootName, via)
	case hotLit:
		return fmt.Sprintf("%s literal in loop in %s allocates per iteration, reachable from //flare:hotpath function %s via %s",
			site.detail, where, rootName, via)
	case hotIface:
		return fmt.Sprintf("opaque interface call %s in %s, reachable from //flare:hotpath function %s via %s: waive with //flare:allow <reason> or devirtualize",
			site.detail, where, rootName, via)
	}
	return ""
}

// displayName qualifies a summary's name with its package when viewed
// from another package's pass.
func displayName(pass *Pass, sum *hotSummary) string {
	if sum.pkg != nil && sum.pkg != pass.Pkg {
		return sum.pkg.Name() + "." + sum.name
	}
	return sum.name
}

// summarizeHot walks one function body, recording allocation sites,
// opaque interface calls (deduped per method), and static call edges.
func summarizeHot(pass *Pass, fd *ast.FuncDecl, fn *types.Func) *hotSummary {
	sum := &hotSummary{
		name: funcDisplayName(pass, fd, fn),
		pkg:  pass.Pkg,
		hot:  hasHotpathDirective(fd.Doc),
	}
	seenIface := map[string]bool{}
	seenCall := map[*types.Func]bool{}
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.DeferStmt:
			sum.sites = append(sum.sites, hotSite{pos: n.Pos(), kind: hotDefer})
		case *ast.ForStmt, *ast.RangeStmt:
			// Everything under a loop header or body runs per
			// iteration for allocation-accounting purposes.
			walkChildren(n, func(c ast.Node) { walk(c, true) })
			return
		case *ast.FuncLit:
			if caps := captures(pass, fd, n); len(caps) > 0 {
				sum.sites = append(sum.sites, hotSite{pos: n.Pos(), kind: hotClosure, detail: strings.Join(caps, ", ")})
			}
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(n); inLoop && t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					sum.sites = append(sum.sites, hotSite{pos: n.Pos(), kind: hotLit, detail: "map"})
				case *types.Slice:
					sum.sites = append(sum.sites, hotSite{pos: n.Pos(), kind: hotLit, detail: "slice"})
				}
			}
		case *ast.CallExpr:
			callee, kind := classifyCall(pass.Info, n)
			switch kind {
			case callStatic:
				if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" &&
					strings.Contains(strings.ToLower(callee.Name()), "print") {
					sum.sites = append(sum.sites, hotSite{pos: n.Pos(), kind: hotFmt, detail: callee.Name()})
				} else if !seenCall[callee] {
					seenCall[callee] = true
					sum.calls = append(sum.calls, hotCall{callee: callee})
				}
			case callInterface:
				detail := ifaceCallName(pass, n, callee)
				if !seenIface[detail] {
					seenIface[detail] = true
					sum.sites = append(sum.sites, hotSite{pos: n.Pos(), kind: hotIface, detail: detail})
				}
			}
		case *ast.BinaryExpr:
			if inLoop && n.Op == token.ADD && isString(pass, n.X) {
				sum.sites = append(sum.sites, hotSite{pos: n.Pos(), kind: hotConcat})
			}
		case *ast.AssignStmt:
			if inLoop && n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass, n.Lhs[0]) {
				sum.sites = append(sum.sites, hotSite{pos: n.Pos(), kind: hotConcat})
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, inLoop) })
	}
	walk(fd.Body, false)
	return sum
}

// funcDisplayName renders "tick" or "(*Sim).runFast".
func funcDisplayName(pass *Pass, fd *ast.FuncDecl, fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fd.Name.Name
	}
	recv := types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg))
	return fmt.Sprintf("(%s).%s", recv, fd.Name.Name)
}

// ifaceCallName renders the interface call as the receiver's static
// type plus the method: "context.Context.Err", "driver.Controller.OnBAI".
func ifaceCallName(pass *Pass, call *ast.CallExpr, fn *types.Func) string {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := pass.Info.TypeOf(sel.X); t != nil {
			return types.TypeString(t, func(p *types.Package) string { return p.Name() }) + "." + fn.Name()
		}
	}
	return fn.Name()
}

// walkChildren visits n's immediate children once each.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true // enter n itself
		}
		if c != nil {
			visit(c)
		}
		return false // do not descend; visit recurses itself
	})
}

// captures lists the variables a func literal captures from the
// enclosing function: identifiers used inside the literal whose
// definition lies within the enclosing declaration but outside the
// literal (parameters, receiver, locals — not package globals, which
// cost nothing to reference).
func captures(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		pos := obj.Pos()
		if pos >= fd.Pos() && pos < fd.End() && !(pos >= lit.Pos() && pos < lit.End()) {
			if !seen[obj.Name()] {
				seen[obj.Name()] = true
				out = append(out, obj.Name())
			}
		}
		return true
	})
	return out
}

// isString reports whether e has (possibly named) string type.
func isString(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
