package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpath is the static complement to the AllocsPerRun floors and the
// flarebench simsec/sec gate: functions whose doc comment carries
// //flare:hotpath (the Sim tick loops, the scheduler argmax, the MCKP
// sweep, Bearer.tick, Recorder.Emit) must not contain
//
//   - capturing closures (each capture forces a heap-allocated context;
//     PR 3 replaced the per-ACK closure with a method value for exactly
//     this reason),
//   - fmt printing (reflection, interface boxing, and an implicit
//     []any allocation per call),
//   - string concatenation inside loops (quadratic garbage), or
//   - defer (per-call bookkeeping, and it hides work at exit).
//
// The benchmark gates catch regressions after the fact on covered
// configs; this analyzer rejects the construct at review time on every
// config.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "forbids capturing closures, fmt printing, in-loop string concatenation, and defer " +
		"inside functions annotated //flare:hotpath",
	Run: runHotpath,
}

func runHotpath(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathDirective(fd.Doc) {
				continue
			}
			checkHotpathFunc(pass, fd)
		}
	}
}

func checkHotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in //flare:hotpath function %s", name)
		case *ast.ForStmt, *ast.RangeStmt:
			// Everything under a loop header or body runs per
			// iteration for concat-accounting purposes.
			walkChildren(n, func(c ast.Node) { walk(c, true) })
			return
		case *ast.FuncLit:
			if caps := captures(pass, fd, n); len(caps) > 0 {
				pass.Reportf(n.Pos(), "capturing closure in //flare:hotpath function %s (captures %s); hoist it or use a method value",
					name, strings.Join(caps, ", "))
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
					fn.Pkg().Path() == "fmt" && strings.Contains(strings.ToLower(fn.Name()), "print") {
					pass.Reportf(n.Pos(), "fmt.%s in //flare:hotpath function %s", fn.Name(), name)
				}
			}
		case *ast.BinaryExpr:
			if inLoop && n.Op == token.ADD && isString(pass, n.X) {
				pass.Reportf(n.Pos(), "string concatenation in loop in //flare:hotpath function %s; use a reused []byte buffer", name)
			}
		case *ast.AssignStmt:
			if inLoop && n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string concatenation in loop in //flare:hotpath function %s; use a reused []byte buffer", name)
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, inLoop) })
	}
	walk(fd.Body, false)
}

// walkChildren visits n's immediate children once each.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true // enter n itself
		}
		if c != nil {
			visit(c)
		}
		return false // do not descend; visit recurses itself
	})
}

// captures lists the variables a func literal captures from the
// enclosing function: identifiers used inside the literal whose
// definition lies within the enclosing declaration but outside the
// literal (parameters, receiver, locals — not package globals, which
// cost nothing to reference).
func captures(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		pos := obj.Pos()
		if pos >= fd.Pos() && pos < fd.End() && !(pos >= lit.Pos() && pos < lit.End()) {
			if !seen[obj.Name()] {
				seen[obj.Name()] = true
				out = append(out, obj.Name())
			}
		}
		return true
	})
	return out
}

// isString reports whether e has (possibly named) string type.
func isString(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
