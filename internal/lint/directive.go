// Directive grammar. flarevet understands two comment directives:
//
//	//flare:allow <reason>
//	    Suppresses any flarevet finding on the same line or on the
//	    line directly below the directive. The reason is mandatory:
//	    a bare //flare:allow is itself a finding. Reasons are free
//	    text; write why the invariant is safe to waive HERE. A
//	    directive that suppresses nothing is also a finding (a stale
//	    waiver), so the audit trail cannot rot.
//
//	//flare:hotpath [note]
//	    Marks a function declaration as allocation-sensitive; the
//	    hotpath analyzer then forbids capturing closures, fmt
//	    printing, string concatenation in loops, and defer inside
//	    it and everything reachable from it. The directive must
//	    appear in a function's doc comment.
//
// Both are ordinary line comments, invisible to the compiler: adding or
// removing them cannot change behaviour, goldens, or benchmarks.
package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	allowPrefix   = "//flare:allow"
	hotpathPrefix = "//flare:hotpath"
)

// DirectiveKind classifies a parsed flare directive.
type DirectiveKind int

const (
	// DirectiveNone means the comment is not a flare directive.
	DirectiveNone DirectiveKind = iota
	// DirectiveAllow is //flare:allow <reason>.
	DirectiveAllow
	// DirectiveHotpath is //flare:hotpath [note].
	DirectiveHotpath
)

// ParseDirective parses one comment's raw text (as go/ast stores it,
// leading "//" included). kind is DirectiveNone when the comment is not
// a flare directive. For allow directives, reason is the trimmed reason
// text and malformed reports the grammar violation a bare
// "//flare:allow" commits: the reason is mandatory and must be
// separated from the keyword by a space.
//
// This is the single implementation the runner, the stale-waiver check,
// and FuzzDirective all share.
func ParseDirective(text string) (kind DirectiveKind, reason string, malformed bool) {
	switch {
	case strings.HasPrefix(text, allowPrefix):
		rest := strings.TrimPrefix(text, allowPrefix)
		reason = strings.TrimSpace(rest)
		if reason == "" || !strings.HasPrefix(rest, " ") {
			return DirectiveAllow, "", true
		}
		return DirectiveAllow, reason, false
	case strings.HasPrefix(text, hotpathPrefix):
		return DirectiveHotpath, "", false
	}
	return DirectiveNone, "", false
}

// FormatAllow renders a well-formed allow directive for reason. It is
// the inverse of ParseDirective for reasons that are already trimmed
// and newline-free (FuzzDirective pins the round-trip).
func FormatAllow(reason string) string {
	return allowPrefix + " " + reason
}

// allowSite is one well-formed //flare:allow directive, with the
// consumption bit the stale-waiver check reads.
type allowSite struct {
	pos    token.Position
	reason string
	used   bool
}

// directives is the per-package directive index built by the runner.
type directives struct {
	// allowLines maps filename -> line -> the reasoned allow directive
	// anchored there.
	allowLines map[string]map[int]*allowSite
	// malformed collects directive-grammar findings.
	malformed []Diagnostic
}

// siteFor returns the allow directive covering pos (same line, or the
// line directly above), or nil.
func (d *directives) siteFor(pos token.Position) *allowSite {
	lines := d.allowLines[pos.Filename]
	if s := lines[pos.Line]; s != nil {
		return s
	}
	return lines[pos.Line-1]
}

// allows reports whether a diagnostic at pos is suppressed, marking the
// directive as consumed.
func (d *directives) allows(pos token.Position) bool {
	if s := d.siteFor(pos); s != nil {
		s.used = true
		return true
	}
	return false
}

// waivedAt reports whether pos is covered by a reasoned allow WITHOUT
// consuming it. Analyzers that use a waiver as a scope marker (slotwrite
// keys its worker-goroutine discipline off the determinism waiver on a
// go statement) must not count as the suppression that keeps the
// directive alive.
func (d *directives) waivedAt(pos token.Position) bool {
	return d.siteFor(pos) != nil
}

// collectDirectives scans every comment in the package for flare
// directives, validating their grammar.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{allowLines: make(map[string]map[int]*allowSite)}
	for _, f := range files {
		// Function doc comments are the only legal home for
		// //flare:hotpath; remember them so strays can be reported.
		funcDocs := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kind, reason, malformed := ParseDirective(c.Text)
				switch kind {
				case DirectiveAllow:
					pos := fset.Position(c.Pos())
					if malformed {
						d.malformed = append(d.malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "directive",
							Message:  "flare:allow requires a reason: //flare:allow <why this is safe>",
						})
						continue
					}
					lines := d.allowLines[pos.Filename]
					if lines == nil {
						lines = make(map[int]*allowSite)
						d.allowLines[pos.Filename] = lines
					}
					lines[pos.Line] = &allowSite{pos: pos, reason: reason}
				case DirectiveHotpath:
					if !funcDocs[cg] {
						d.malformed = append(d.malformed, Diagnostic{
							Pos:      fset.Position(c.Pos()),
							Analyzer: "directive",
							Message:  "flare:hotpath must appear in a function declaration's doc comment",
						})
					}
				}
			}
		}
	}
	return d
}

// hasHotpathDirective reports whether a function's doc comment carries
// //flare:hotpath.
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if kind, _, _ := ParseDirective(c.Text); kind == DirectiveHotpath {
			return true
		}
	}
	return false
}
