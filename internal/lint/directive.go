// Directive grammar. flarevet understands two comment directives:
//
//	//flare:allow <reason>
//	    Suppresses any flarevet finding on the same line or on the
//	    line directly below the directive. The reason is mandatory:
//	    a bare //flare:allow is itself a finding. Reasons are free
//	    text; write why the invariant is safe to waive HERE.
//
//	//flare:hotpath [note]
//	    Marks a function declaration as allocation-sensitive; the
//	    hotpath analyzer then forbids capturing closures, fmt
//	    printing, string concatenation in loops, and defer inside
//	    it. The directive must appear in a function's doc comment.
//
// Both are ordinary line comments, invisible to the compiler: adding or
// removing them cannot change behaviour, goldens, or benchmarks.
package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	allowPrefix   = "//flare:allow"
	hotpathPrefix = "//flare:hotpath"
)

// directives is the per-package directive index built by the runner.
type directives struct {
	// allowLines maps filename -> set of lines carrying a well-formed
	// (reasoned) allow directive.
	allowLines map[string]map[int]bool
	// malformed collects directive-grammar findings.
	malformed []Diagnostic
}

// allows reports whether a diagnostic at pos is suppressed: a reasoned
// allow sits on the same line (trailing comment) or the line above.
func (d *directives) allows(pos token.Position) bool {
	lines := d.allowLines[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// collectDirectives scans every comment in the package for flare
// directives, validating their grammar.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{allowLines: make(map[string]map[int]bool)}
	for _, f := range files {
		// Function doc comments are the only legal home for
		// //flare:hotpath; remember them so strays can be reported.
		funcDocs := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				switch {
				case strings.HasPrefix(c.Text, allowPrefix):
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					reason := strings.TrimSpace(rest)
					pos := fset.Position(c.Pos())
					if reason == "" || !strings.HasPrefix(rest, " ") {
						d.malformed = append(d.malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "directive",
							Message:  "flare:allow requires a reason: //flare:allow <why this is safe>",
						})
						continue
					}
					lines := d.allowLines[pos.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						d.allowLines[pos.Filename] = lines
					}
					lines[pos.Line] = true
				case strings.HasPrefix(c.Text, hotpathPrefix):
					if !funcDocs[cg] {
						d.malformed = append(d.malformed, Diagnostic{
							Pos:      fset.Position(c.Pos()),
							Analyzer: "directive",
							Message:  "flare:hotpath must appear in a function declaration's doc comment",
						})
					}
				}
			}
		}
	}
	return d
}

// hasHotpathDirective reports whether a function's doc comment carries
// //flare:hotpath.
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, hotpathPrefix) {
			return true
		}
	}
	return false
}
