package lint_test

import (
	"testing"

	"github.com/flare-sim/flare/internal/lint"
	"github.com/flare-sim/flare/internal/lint/linttest"
)

// TestLayering runs the analyzer under a fixture-local ruleset:
// forbidden imports are reported at the import spec, and a reasoned
// allow on the line above waives one of them.
func TestLayering(t *testing.T) {
	rules := []lint.LayerRule{{
		Scope:  "fixture/layering",
		Forbid: []string{"errors", "os"},
		Reason: "fixture: this layer is I/O- and error-free",
	}}
	linttest.Run(t, "testdata/layering", "fixture/layering", lint.NewLayering(rules))
}

// TestLayeringRealRules loads a fixture UNDER the real has subtree
// path, so the production LayerRules table applies: has must not
// import obs.
func TestLayeringRealRules(t *testing.T) {
	linttest.Run(t, "testdata/layering_real",
		lint.ModulePath+"/internal/has/fixture", lint.Layering)
}
