// The slotwrite analyzer: mechanizes the "disjoint slots + ordered
// fold" pattern every parallel fan-out in this tree hand-rolls
// (cellsim runMany, the lte phase runners, oneapi RunBAIRounds, the
// flaresuite matrix runner).
//
// The contract (documented on sim.WorkerPool): workers may write into
// a shared results slice only at the element owned by the input index
// they were handed, so the writes are disjoint by construction and the
// caller's in-order fold is deterministic without synchronization. Two
// scopes are checked:
//
//   - every RunRange(lo, hi int) method — the sim.RangeRunner
//     contract. The only sanctioned index is the variable of a
//     `for i := lo; i < hi; i++` loop over the handed range.
//   - the body of every goroutine launched by a //flare:allow-waived
//     go statement (the waiver is how a worker-pool fan-out announces
//     itself to the determinism analyzer). There the sanctioned index
//     is the variable of a `range` over a channel — the job index the
//     pool feeds the worker.
//
// Within a scope, any store through an index expression whose base is
// shared (not allocated inside the scope) must use a sanctioned index
// variable, bare: out[0], out[i+1], out[j] for a private counter j are
// findings. Stores into scope-local slices are free.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SlotWrite runs everywhere: RunRange implementations live in wall-
// clock packages (oneapi, flaresuite) too.
var SlotWrite = &Analyzer{
	Name: "slotwrite",
	Doc: "verifies worker-pool goroutines (RunRange methods and //flare:allow-waived go " +
		"statements) store into shared slices only at the input-index slot, keeping " +
		"parallel writes disjoint and the ordered fold deterministic",
	Run: runSlotWrite,
}

func runSlotWrite(pass *Pass) {
	g := buildCallGraph(pass)
	for _, fd := range g.decls {
		if isRunRange(pass, fd) {
			lo := pass.Info.Defs[paramIdent(fd, 0)]
			hi := pass.Info.Defs[paramIdent(fd, 1)]
			sc := newSlotScope(pass, "RunRange")
			sc.collectRangeLoopVars(fd.Body, lo, hi)
			sc.check(fd.Body)
		}
		// Waived go statements: the worker-pool fan-out shape.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok || !pass.WaivedAt(gs.Pos()) {
				return true
			}
			var body *ast.BlockStmt
			switch fun := unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				// go p.work(...): follow the static callee so the
				// pool's worker body is in scope too.
				if fn, kind := classifyCall(pass.Info, gs.Call); kind == callStatic {
					if decl := g.declOf[fn]; decl != nil {
						body = decl.Body
					}
				}
			}
			if body == nil {
				return true
			}
			sc := newSlotScope(pass, "worker goroutine")
			sc.collectChanRangeVars(body)
			sc.check(body)
			return true
		})
	}
}

// isRunRange matches the sim.RangeRunner shape: a method or function
// named RunRange taking exactly (lo, hi int).
func isRunRange(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "RunRange" {
		return false
	}
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	for i := 0; i < 2; i++ {
		b, ok := sig.Params().At(i).Type().Underlying().(*types.Basic)
		if !ok || b.Kind() != types.Int {
			return false
		}
	}
	return true
}

// paramIdent returns the i-th parameter name of fd (flattening grouped
// parameters), or nil.
func paramIdent(fd *ast.FuncDecl, i int) *ast.Ident {
	n := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if n == i {
				return name
			}
			n++
		}
	}
	return nil
}

// slotScope checks one worker scope.
type slotScope struct {
	pass *Pass
	kind string
	// indexVars are the sanctioned input-index variables.
	indexVars map[types.Object]bool
	// owned are slice variables allocated inside the scope; stores
	// into them are private.
	owned map[types.Object]bool
}

func newSlotScope(pass *Pass, kind string) *slotScope {
	return &slotScope{
		pass:      pass,
		kind:      kind,
		indexVars: map[types.Object]bool{},
		owned:     map[types.Object]bool{},
	}
}

// collectRangeLoopVars sanctions the i of every `for i := lo; i < hi;
// i++` over the handed [lo, hi) range.
func (sc *slotScope) collectRangeLoopVars(body *ast.BlockStmt, lo, hi types.Object) {
	if lo == nil || hi == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		assign, ok := fs.Init.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		iv, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || !sc.usesObj(assign.Rhs[0], lo) {
			return true
		}
		cond, ok := fs.Cond.(*ast.BinaryExpr)
		if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) || !sc.usesObj(cond.Y, hi) {
			return true
		}
		if obj := sc.pass.Info.Defs[iv]; obj != nil {
			sc.indexVars[obj] = true
		}
		return true
	})
}

// collectChanRangeVars sanctions the i of every `for i := range ch`
// over a channel — the job index a pool feeds its workers.
func (sc *slotScope) collectChanRangeVars(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := sc.pass.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return true
		}
		if id, ok := rs.Key.(*ast.Ident); ok {
			if obj := sc.pass.Info.Defs[id]; obj != nil {
				sc.indexVars[obj] = true
			}
		}
		return true
	})
}

// usesObj reports whether e is (or trivially wraps) a use of obj.
func (sc *slotScope) usesObj(e ast.Expr, obj types.Object) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && sc.pass.Info.Uses[id] == obj
}

// check walks the scope body for shared-slice stores.
func (sc *slotScope) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // a nested goroutine is its own scope
		case *ast.AssignStmt:
			// Locally allocated slices are private to the scope.
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && isLocalAlloc(n.Rhs[i]) {
						if obj := sc.pass.Info.Defs[id]; obj != nil {
							sc.owned[obj] = true
						}
					}
				}
			}
			for _, lhs := range n.Lhs {
				sc.checkStore(lhs)
			}
		case *ast.IncDecStmt:
			sc.checkStore(n.X)
		}
		return true
	})
}

// isLocalAlloc recognizes make(...), composite literals, and &T{...}.
func isLocalAlloc(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
			return true
		}
	}
	return false
}

// checkStore flags a store through an index expression on a shared
// slice whose index is not a sanctioned input-index variable.
func (sc *slotScope) checkStore(lhs ast.Expr) {
	ix, ok := unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	// Only slice/array bases: map stores are a different hazard
	// (determinism and the race detector own it).
	baseType := sc.pass.Info.TypeOf(ix.X)
	if baseType == nil {
		return
	}
	switch deref(baseType).Underlying().(type) {
	case *types.Slice, *types.Array:
	default:
		return
	}
	root := rootIdent(ix.X)
	if root != nil {
		if obj := sc.pass.Info.Uses[root]; obj != nil && sc.owned[obj] {
			return
		}
	}
	if id, ok := unparen(ix.Index).(*ast.Ident); ok {
		if obj := sc.pass.Info.Uses[id]; obj != nil && sc.indexVars[obj] {
			return
		}
	}
	sc.pass.Reportf(lhs.Pos(),
		"shared-slice store %s in a %s indexes by %s, not the input-index variable: parallel slots must stay disjoint for the ordered fold to be deterministic",
		exprString(ix.X)+"["+exprString(ix.Index)+"]", sc.kind, exprString(ix.Index))
}
