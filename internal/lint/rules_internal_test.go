package lint

import "testing"

// TestLayerRulesTable sanity-checks the declarative DAG itself against
// the boundaries PRs 2 and 4 introduced: observer-hook layers never
// import obs, drivers never import the engine, obs imports no sim
// package — and the legitimate edges stay open.
func TestLayerRulesTable(t *testing.T) {
	cases := []struct {
		pkg, imp string
		bad      bool
	}{
		{ModulePath + "/internal/has", ModulePath + "/internal/obs", true},
		{ModulePath + "/internal/abr", ModulePath + "/internal/obs", true},
		{ModulePath + "/internal/faults", ModulePath + "/internal/obs", true},
		{ModulePath + "/internal/obs", ModulePath + "/internal/sim", true},
		{ModulePath + "/internal/cellsim/driver", ModulePath + "/internal/cellsim", true},
		{ModulePath + "/internal/oneapi", ModulePath + "/internal/cellsim", true},
		{ModulePath + "/internal/oneapi", ModulePath + "/internal/cellsim/driver", true},
		{ModulePath + "/internal/oneapi", ModulePath + "/internal/loadgen", true},
		{ModulePath + "/internal/loadgen", ModulePath + "/internal/cellsim", true},
		{ModulePath + "/internal/loadgen", ModulePath + "/internal/sim", true},
		{ModulePath + "/internal/flaresuite", ModulePath + "/internal/oneapi", true},
		{ModulePath + "/internal/flaresuite", ModulePath + "/internal/loadgen", true},
		{ModulePath + "/cmd/flaresuite", ModulePath + "/internal/cellsim", true},
		{ModulePath + "/cmd/flaresuite", ModulePath + "/internal/experiments", true},
		{ModulePath + "/internal/core", ModulePath + "/internal/obs", false},
		{ModulePath + "/internal/oneapi", ModulePath + "/internal/sim", false},
		{ModulePath + "/internal/oneapi", ModulePath + "/internal/obs", false},
		{ModulePath + "/internal/loadgen", ModulePath + "/internal/oneapi", false},
		{ModulePath + "/internal/loadgen", ModulePath + "/internal/obs", false},
		{ModulePath + "/internal/cellsim/driver", ModulePath + "/internal/cellsim/driver/sub", false},
		{ModulePath + "/internal/lte", ModulePath + "/internal/sim", false},
		{ModulePath + "/internal/has", ModulePath + "/internal/transport", false},
		{ModulePath + "/internal/flaresuite", ModulePath + "/internal/cellsim", false},
		{ModulePath + "/internal/flaresuite", ModulePath + "/internal/experiments", false},
		{ModulePath + "/internal/flaresuite", ModulePath + "/internal/obs", false},
		{ModulePath + "/cmd/flaresuite", ModulePath + "/internal/flaresuite", false},
		{ModulePath + "/cmd/flaresuite", ModulePath + "/internal/buildinfo", false},
		{ModulePath + "/cmd/flaresuite", ModulePath + "/internal/graceful", false},
	}
	for _, c := range cases {
		got := false
		for _, rule := range LayerRules {
			if pathMatches(rule.Scope, c.pkg) && forbidden(rule, c.imp) {
				got = true
			}
		}
		if got != c.bad {
			t.Errorf("%s importing %s: forbidden=%v, want %v", c.pkg, c.imp, got, c.bad)
		}
	}
}

// TestIsSimClock pins domain membership, including subpackage
// inheritance and the wall-clock exemptions.
func TestIsSimClock(t *testing.T) {
	for path, want := range map[string]bool{
		ModulePath + "/internal/cellsim":        true,
		ModulePath + "/internal/cellsim/driver": true,
		ModulePath + "/internal/core":           true,
		ModulePath + "/internal/lte":            true,
		ModulePath + "/internal/sim":            true,
		ModulePath + "/internal/transport":      true,
		ModulePath + "/internal/has":            true,
		ModulePath + "/internal/oneapi":         false,
		ModulePath + "/internal/flaresuite":     false,
		ModulePath + "/internal/obs":            false,
		ModulePath + "/internal/hasty":          false, // prefix, not subtree
		ModulePath + "/cmd/cellsim":             false,
	} {
		if got := IsSimClock(path); got != want {
			t.Errorf("IsSimClock(%s) = %v, want %v", path, got, want)
		}
	}
}
