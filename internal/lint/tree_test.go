package lint_test

import (
	"testing"

	"github.com/flare-sim/flare/internal/lint"
)

// TestTreeClean is the regression gate behind `make lint`: it loads the
// whole module exactly as cmd/flarevet does and asserts the suite
// produces zero findings. Any new wall-clock read, map range, layering
// break, hot-path allocation pattern, or hand-rolled obs.Event literal
// fails this test (and so `go test ./...`) even if the author never ran
// flarevet.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is seconds of work; skipped in -short")
	}
	pkgs, err := lint.LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	// One fact store for the whole session, exactly as cmd/flarevet
	// runs it: packages arrive in dependency order, so callee facts
	// (hotpath summaries, seed sinks) and waivers flow to callers, and
	// the stale-waiver audit runs once everything has been analyzed.
	store := lint.NewFactStore()
	clean := true
	for _, pkg := range pkgs {
		for _, d := range lint.RunWithFacts(pkg, lint.AnalyzersFor(pkg.Path), store) {
			t.Errorf("%s", d)
			clean = false
		}
	}
	for _, d := range store.StaleWaivers() {
		t.Errorf("%s", d)
		clean = false
	}
	if clean {
		t.Logf("flarevet clean across %d packages", len(pkgs))
	}
}
