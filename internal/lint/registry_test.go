package lint_test

import (
	"strings"
	"testing"

	"github.com/flare-sim/flare/internal/lint"
)

// TestAnalyzerHelpCoversRegistry pins the -help-analyzers text to the
// registry: every registered analyzer appears by name with a non-empty
// doc, names are unique, and the suite is exactly the eight analyzers
// this tree documents. Adding an analyzer without registering it (or
// registering one without doc) fails here, not in a user's terminal.
func TestAnalyzerHelpCoversRegistry(t *testing.T) {
	all := lint.Analyzers()
	if len(all) != 8 {
		t.Fatalf("registry has %d analyzers, want 8 (update this pin, -help-analyzers, DESIGN.md §12, and README together)", len(all))
	}
	help := lint.AnalyzerHelp()
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %q has empty name or doc", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if !strings.Contains(help, a.Name+"\n") {
			t.Errorf("AnalyzerHelp() does not list analyzer %q", a.Name)
		}
		if !strings.Contains(help, a.Doc) {
			t.Errorf("AnalyzerHelp() does not carry the doc for %q", a.Name)
		}
	}
	// AnalyzersFor must never select an unregistered analyzer.
	for _, path := range []string{
		lint.ModulePath + "/internal/cellsim",
		lint.ModulePath + "/internal/oneapi",
		lint.ModulePath + "/cmd/flarebench",
	} {
		for _, a := range lint.AnalyzersFor(path) {
			if !seen[a.Name] {
				t.Errorf("AnalyzersFor(%s) selects unregistered analyzer %q", path, a.Name)
			}
		}
	}
}
