// Package lint is flarevet's analyzer suite: mechanical enforcement of
// the invariants PRs 2-4 established by convention — byte-exact
// deterministic replay inside the sim-clock domain, the layering DAG
// (observer hooks never import obs, drivers see the engine only through
// the narrow view), the zero-alloc hot path, and the single-sourced
// flare-trace/1 event schema.
//
// The suite is modelled on golang.org/x/tools/go/analysis (Analyzer /
// Pass / Diagnostic, analysistest-style fixtures) but is implemented on
// the standard library alone — go/ast, go/types, go/importer and a
// `go list`-driven loader — because this module vendors no third-party
// dependencies. The API is kept close enough to go/analysis that
// porting onto the real framework is a mechanical change if x/tools is
// ever vendored.
//
// Suppression is explicit and audited: a finding is silenced only by a
// `//flare:allow <reason>` directive on the offending line (or the line
// above), and the runner itself rejects a directive with no reason, so
// every suppression in the tree documents why the invariant is safe to
// waive at that site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker. Run inspects a single
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is the one-paragraph description `flarevet -help` prints.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the analyzer this pass executes.
	Analyzer *Analyzer
	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet
	// Files are the package's parsed sources (comments included).
	Files []*ast.File
	// PkgPath is the package import path ("github.com/..." for real
	// tree runs, the fixture directory name under analysistest).
	PkgPath string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's findings for Files.
	Info *types.Info

	// store is the session fact store: cross-package function
	// summaries, the merged waiver index, and report deduplication.
	store *FactStore
	diags *[]Diagnostic
}

// WaivedAt reports whether pos is covered by a reasoned //flare:allow
// directive, without consuming it. Analyzers use this when a waiver
// scopes further checking (slotwrite inspects the goroutines whose go
// statement carries a determinism waiver) rather than suppressing a
// finding.
func (p *Pass) WaivedAt(pos token.Pos) bool {
	return p.store.dirs.waivedAt(p.Fset.Position(pos))
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the go-vet-style "file:line:col: analyzer: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies the analyzers to one standalone package and returns the
// surviving diagnostics: findings suppressed by a well-formed
// //flare:allow directive are dropped; malformed directives (no
// reason, or a hotpath mark not attached to a function declaration)
// and stale waivers that suppressed nothing are themselves reported
// under the "directive" pseudo-analyzer.
//
// Run is the single-package convenience (fixtures, one-shot checks).
// Multi-package sessions — cmd/flarevet, the tree test — create one
// FactStore, call RunWithFacts per package in dependency order, and
// append StaleWaivers at the end, so that facts and waivers flow
// across package boundaries.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	store := NewFactStore()
	diags := RunWithFacts(pkg, analyzers, store)
	diags = append(diags, store.StaleWaivers()...)
	SortDiagnostics(diags)
	return diags
}

// RunWithFacts applies the analyzers to one package of a session whose
// state lives in store. The package's directives are merged into the
// store before the analyzers run (so waivers in this package's files
// can suppress findings reported by LATER packages, and vice versa for
// facts); suppression is then checked against the whole session index,
// consuming the matched directives. Malformed-directive findings are
// appended; stale-waiver findings are NOT — harvest them from
// store.StaleWaivers once the session is complete.
func RunWithFacts(pkg *Package, analyzers []*Analyzer, store *FactStore) []Diagnostic {
	dirs := collectDirectives(pkg.Fset, pkg.Files)
	store.mergeDirectives(dirs)

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			store:    store,
			diags:    &diags,
		}
		a.Run(pass)
	}

	kept := diags[:0]
	for _, d := range diags {
		if !store.dirs.allows(d.Pos) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, dirs.malformed...)
	SortDiagnostics(kept)
	return kept
}
