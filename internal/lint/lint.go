// Package lint is flarevet's analyzer suite: mechanical enforcement of
// the invariants PRs 2-4 established by convention — byte-exact
// deterministic replay inside the sim-clock domain, the layering DAG
// (observer hooks never import obs, drivers see the engine only through
// the narrow view), the zero-alloc hot path, and the single-sourced
// flare-trace/1 event schema.
//
// The suite is modelled on golang.org/x/tools/go/analysis (Analyzer /
// Pass / Diagnostic, analysistest-style fixtures) but is implemented on
// the standard library alone — go/ast, go/types, go/importer and a
// `go list`-driven loader — because this module vendors no third-party
// dependencies. The API is kept close enough to go/analysis that
// porting onto the real framework is a mechanical change if x/tools is
// ever vendored.
//
// Suppression is explicit and audited: a finding is silenced only by a
// `//flare:allow <reason>` directive on the offending line (or the line
// above), and the runner itself rejects a directive with no reason, so
// every suppression in the tree documents why the invariant is safe to
// waive at that site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker. Run inspects a single
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is the one-paragraph description `flarevet -help` prints.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the analyzer this pass executes.
	Analyzer *Analyzer
	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet
	// Files are the package's parsed sources (comments included).
	Files []*ast.File
	// PkgPath is the package import path ("github.com/..." for real
	// tree runs, the fixture directory name under analysistest).
	PkgPath string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's findings for Files.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the go-vet-style "file:line:col: analyzer: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies the analyzers to one loaded package and returns the
// surviving diagnostics: findings suppressed by a well-formed
// //flare:allow directive are dropped, and malformed directives (no
// reason, or a hotpath mark not attached to a function declaration) are
// themselves reported under the "directive" pseudo-analyzer.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}

	dirs := collectDirectives(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !dirs.allows(d.Pos) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, dirs.malformed...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}
