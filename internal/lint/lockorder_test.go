package lint_test

import (
	"testing"

	"github.com/flare-sim/flare/internal/lint"
	"github.com/flare-sim/flare/internal/lint/linttest"
)

// TestLockOrder runs the analyzer under a fixture-local rank table
// shaped like the real one (lockranks.go): a package-level registry
// mutex above a Server/Shard/Cell struct hierarchy. The fixture covers
// descending acquisition, direct and transitive inversions, the
// equal-rank Handover shape and its global-order waiver, deferred
// unlocks, goroutine-fresh held sets, and closure inheritance.
func TestLockOrder(t *testing.T) {
	ranks := []lint.LockClass{
		{Pkg: "fixture/lockfix", Field: "regMu", Rank: 50,
			Doc: "fixture: package-level registry lock, outermost"},
		{Pkg: "fixture/lockfix", Type: "Server", Field: "optMu", Rank: 30,
			Doc: "fixture: server-wide optimizer lock"},
		{Pkg: "fixture/lockfix", Type: "Shard", Field: "mu", Rank: 20,
			Doc: "fixture: one shard's index lock"},
		{Pkg: "fixture/lockfix", Type: "Cell", Field: "mu", Rank: 10,
			Doc: "fixture: one cell's state lock, innermost"},
	}
	linttest.Run(t, "testdata/lockorder", "fixture/lockfix", lint.NewLockOrder(ranks))
}

// TestLockRanksTable pins the real hierarchy: the four control-plane
// classes exist, with distinct ranks in the documented order
// poolMu > optMu > shard.mu > cellState.mu, and every entry documents
// what it protects.
func TestLockRanksTable(t *testing.T) {
	want := []struct {
		typ, field string
	}{
		{"Server", "poolMu"},
		{"Server", "optMu"},
		{"shard", "mu"},
		{"cellState", "mu"},
	}
	if len(lint.LockRanks) != len(want) {
		t.Fatalf("LockRanks has %d classes, want %d", len(lint.LockRanks), len(want))
	}
	prev := int(^uint(0) >> 1) // MaxInt
	for i, w := range want {
		c := lint.LockRanks[i]
		if c.Type != w.typ || c.Field != w.field {
			t.Errorf("LockRanks[%d] = %s, want %s.%s", i, c, w.typ, w.field)
		}
		if c.Rank >= prev {
			t.Errorf("LockRanks[%d] (%s) rank %d not strictly below its predecessor %d", i, c, c.Rank, prev)
		}
		if c.Doc == "" {
			t.Errorf("LockRanks[%d] (%s) has no Doc", i, c)
		}
		prev = c.Rank
	}
}
