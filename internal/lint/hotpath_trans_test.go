package lint_test

import (
	"testing"

	"github.com/flare-sim/flare/internal/lint"
	"github.com/flare-sim/flare/internal/lint/linttest"
)

// TestHotpathTransitive covers the v2 half of the hotpath analyzer:
// transitive reporting through the static call graph (with the chain
// from the annotated root in the message), opaque interface calls at
// the frontier and their waiver, in-loop composite literals at depth
// zero and transitively, once-only reporting when two roots reach the
// same site, and silence for helpers no root reaches.
func TestHotpathTransitive(t *testing.T) {
	linttest.Run(t, "testdata/hotpath_trans", "fixture/hottrans", lint.Hotpath)
}
