package lint_test

import (
	"testing"

	"github.com/flare-sim/flare/internal/lint"
	"github.com/flare-sim/flare/internal/lint/linttest"
)

// TestHotpath covers all four forbidden constructs inside an annotated
// function, their legality outside one, the reasoned waiver, and the
// stray-directive grammar check.
func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata/hotpath", "fixture/hotpath", lint.Hotpath)
}
