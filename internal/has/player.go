package has

import (
	"fmt"

	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/transport"
)

// State is the player-side information an Adapter may use when choosing
// the next segment's quality.
type State struct {
	// NowTTI is the current simulated time.
	NowTTI int64
	// BufferSeconds is the current playout buffer level.
	BufferSeconds float64
	// LastQuality is the ladder index of the previously selected
	// segment, or -1 before the first selection.
	LastQuality int
	// SegmentsDownloaded counts completed segments.
	SegmentsDownloaded int
	// Ladder is the available bitrate ladder.
	Ladder Ladder
	// Playing reports whether playback is currently running.
	Playing bool
}

// SegmentRecord describes one completed segment download.
type SegmentRecord struct {
	// Index is the segment's sequence number.
	Index int
	// Quality is the ladder index that was downloaded.
	Quality int
	// RateBps is the encoding bitrate.
	RateBps float64
	// Bytes is the segment size.
	Bytes int64
	// StartTTI and EndTTI bound the download (request to last byte).
	StartTTI, EndTTI int64
	// ThroughputBps is the measured download throughput.
	ThroughputBps float64
}

// Adapter chooses segment qualities — the pluggable rate-adaptation
// algorithm (FESTIVE, GOOGLE, AVIS client, or the FLARE plugin).
type Adapter interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// NextQuality returns the ladder index for the next segment.
	NextQuality(s State) int
	// OnSegmentComplete feeds back the finished download.
	OnSegmentComplete(rec SegmentRecord)
}

// RequestPacer is an optional Adapter extension: a non-zero delay
// postpones the next segment request by that many TTIs (FESTIVE's
// randomized chunk scheduling).
type RequestPacer interface {
	RequestDelay(s State) int64
}

// PlayerConfig parameterises the player state machine.
type PlayerConfig struct {
	// StartupSegments is how many segments must be buffered before
	// playback starts (and resumes after a stall).
	StartupSegments int
	// MaxBufferSeconds pauses segment requests while the buffer is at
	// or above this level.
	MaxBufferSeconds float64
	// RequestLatencyTTIs is the HTTP GET propagation delay before the
	// server starts sending the response.
	RequestLatencyTTIs int64
}

// DefaultPlayerConfig returns the standard player settings: start after 2
// segments, cap the buffer at 30 s, 20 ms request latency.
func DefaultPlayerConfig() PlayerConfig {
	return PlayerConfig{
		StartupSegments:    2,
		MaxBufferSeconds:   30,
		RequestLatencyTTIs: 20,
	}
}

func (c PlayerConfig) validate() error {
	if c.StartupSegments <= 0 {
		return fmt.Errorf("has: StartupSegments must be positive, got %d", c.StartupSegments)
	}
	if c.MaxBufferSeconds <= 0 {
		return fmt.Errorf("has: MaxBufferSeconds must be positive, got %v", c.MaxBufferSeconds)
	}
	if c.RequestLatencyTTIs < 0 {
		return fmt.Errorf("has: negative request latency %d", c.RequestLatencyTTIs)
	}
	return nil
}

// Player is the HAS client state machine. It downloads segments
// sequentially over one TCP flow, maintains the playout buffer, detects
// stalls, and records QoE statistics. Single-goroutine, event-driven.
type Player struct {
	cfg  PlayerConfig
	env  transport.Env
	flow *transport.Flow
	mpd  *MPD
	// ladder is mpd's bitrate ladder, extracted once at construction:
	// state snapshots and per-segment accounting read it every decision,
	// and MPD.Ladder() allocates per call.
	ladder  Ladder
	adapter Adapter

	// OnSegment, if set, is invoked after each completed segment.
	OnSegment func(rec SegmentRecord)
	// OnStall, if set, is invoked when a rebuffering stall begins
	// (started=true) and when playback resumes from one (started=false).
	// Initial startup delay and end-of-presentation drain do not fire it.
	OnStall func(started bool)

	nextSeg     int
	lastQuality int
	downloading bool
	segStartTTI int64
	segBytes    int64
	segRecv     int64
	segQuality  int

	// Lazily-advanced playback state.
	buffer     float64 // seconds, as of lastTTI
	lastTTI    int64
	playing    bool
	stalled    bool // stalled after playback had started
	everPlayed bool
	done       bool

	stallSeconds float64
	stallCount   int
	startTTI     int64 // when Start was called
	startupTTI   int64 // when playback first started, -1 until then

	records   []SegmentRecord
	qualities []int

	// requestNextFn and sendFn are the pre-bound scheduling callbacks
	// (see NewPlayer). argSched is the env's payload-carrying scheduler
	// when it offers one — the allocation-free path for the per-segment
	// request-latency timer.
	requestNextFn func()
	sendFn        func(int64)
	argSched      transport.ArgScheduler
}

// NewPlayer builds a player over the given flow. The flow's OnDelivered
// hook is taken over by the player.
func NewPlayer(env transport.Env, flow *transport.Flow, mpd *MPD, adapter Adapter, cfg PlayerConfig) (*Player, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ladder := mpd.Ladder()
	if err := ladder.Validate(); err != nil {
		return nil, err
	}
	if adapter == nil {
		return nil, fmt.Errorf("has: nil adapter")
	}
	p := &Player{
		cfg:         cfg,
		env:         env,
		flow:        flow,
		mpd:         mpd,
		ladder:      ladder,
		adapter:     adapter,
		lastQuality: -1,
		startupTTI:  -1,
	}
	// Bind the rescheduling callbacks once: a method value allocates at
	// every use site, and the buffer-cap pacing loop schedules
	// requestNext continuously while a stream is buffer-limited.
	p.requestNextFn = p.requestNext
	p.sendFn = func(bytes int64) { p.flow.Send(bytes) }
	p.argSched, _ = env.(transport.ArgScheduler)
	flow.OnDelivered = p.onBytes
	return p, nil
}

// Adapter returns the player's rate-adaptation algorithm.
func (p *Player) Adapter() Adapter { return p.adapter }

// MPD returns the media description the player is streaming.
func (p *Player) MPD() *MPD { return p.mpd }

// Flow returns the underlying transport flow.
func (p *Player) Flow() *transport.Flow { return p.flow }

// Start kicks off the first segment request.
func (p *Player) Start() {
	p.lastTTI = p.env.NowTTI()
	p.startTTI = p.lastTTI
	p.requestNext()
}

// State snapshots the adapter-visible player state at the current time.
func (p *Player) State() State {
	//flare:allow hotpath frontier: the transport.Env impls (cellsim env, flowEnv) read the sim clock field without allocating; the engine allocs/op gate covers them
	now := p.env.NowTTI()
	p.advance(now)
	return State{
		NowTTI:             now,
		BufferSeconds:      p.buffer,
		LastQuality:        p.lastQuality,
		SegmentsDownloaded: len(p.records),
		Ladder:             p.ladder,
		Playing:            p.playing,
	}
}

// BufferSeconds returns the current playout buffer level.
func (p *Player) BufferSeconds() float64 {
	//flare:allow hotpath frontier: the transport.Env impls (cellsim env, flowEnv) read the sim clock field without allocating; the engine allocs/op gate covers them
	p.advance(p.env.NowTTI())
	return p.buffer
}

// StallSeconds returns the cumulative rebuffering time (stalls after
// playback first started; the initial startup delay is not counted).
func (p *Player) StallSeconds() float64 {
	p.advance(p.env.NowTTI())
	return p.stallSeconds
}

// StallCount returns the number of rebuffering events.
func (p *Player) StallCount() int {
	p.advance(p.env.NowTTI())
	return p.stallCount
}

// StartupDelaySeconds returns the time from Start until playback first
// began, or -1 if playback never started.
func (p *Player) StartupDelaySeconds() float64 {
	if p.startupTTI < 0 {
		return -1
	}
	return float64(p.startupTTI-p.startTTI) / lte.TTIsPerSecond
}

// Records returns the completed segment downloads. The slice must not be
// modified.
func (p *Player) Records() []SegmentRecord { return p.records }

// Qualities returns the ladder index selected for each completed segment.
func (p *Player) Qualities() []int { return p.qualities }

// SelectedRates returns the bitrate of each completed segment in bits/s.
func (p *Player) SelectedRates() []float64 {
	l := p.ladder
	out := make([]float64, len(p.qualities))
	for i, q := range p.qualities {
		out[i] = l.Rate(q)
	}
	return out
}

// Done reports whether the presentation finished downloading or the
// session was stopped.
func (p *Player) Done() bool { return p.done }

// Stop ends the session: no further segment requests are issued (an
// in-flight download completes and is still recorded). Used for
// client-churn scenarios where viewers leave mid-stream.
func (p *Player) Stop() {
	p.advance(p.env.NowTTI())
	p.done = true
}

// advance brings the lazy playback state up to now: drains the buffer
// while playing and accumulates stall time while stalled.
func (p *Player) advance(now int64) {
	if now <= p.lastTTI {
		return
	}
	dt := float64(now-p.lastTTI) / lte.TTIsPerSecond
	p.lastTTI = now
	if p.playing {
		if dt <= p.buffer {
			p.buffer -= dt
			return
		}
		// Ran dry partway through the interval.
		stallDt := dt - p.buffer
		p.buffer = 0
		p.playing = false
		if (p.done || p.nextSeg >= p.totalSegments()) && !p.downloading {
			// Presentation played out to the end (or the session was
			// stopped): not a stall.
			return
		}
		p.stalled = true
		p.stallCount++
		p.stallSeconds += stallDt
		if p.OnStall != nil {
			p.OnStall(true)
		}
		return
	}
	if p.stalled {
		p.stallSeconds += dt
	}
}

func (p *Player) totalSegments() int {
	if p.mpd.TotalSegments <= 0 {
		return int(^uint(0) >> 1) // unbounded
	}
	return p.mpd.TotalSegments
}

// maybeStartPlayback starts or resumes playback once enough segments are
// buffered.
func (p *Player) maybeStartPlayback() {
	threshold := float64(p.cfg.StartupSegments) * p.mpd.SegmentSeconds()
	if !p.playing && p.buffer >= threshold {
		wasStalled := p.stalled
		p.playing = true
		p.stalled = false
		if !p.everPlayed {
			p.everPlayed = true
			p.startupTTI = p.lastTTI
		}
		if wasStalled && p.OnStall != nil {
			p.OnStall(false)
		}
	}
}

// requestNext issues the next segment request if allowed.
func (p *Player) requestNext() {
	now := p.env.NowTTI()
	p.advance(now)
	if p.downloading || p.done {
		return
	}
	if p.nextSeg >= p.totalSegments() {
		p.done = true
		return
	}
	// Buffer cap: defer the request until the buffer drains below the
	// maximum.
	if p.buffer >= p.cfg.MaxBufferSeconds {
		wait := int64((p.buffer-p.cfg.MaxBufferSeconds)*lte.TTIsPerSecond) + 1
		if !p.playing {
			wait = 100 // re-check while paused; drain only happens in playback
		}
		p.env.Schedule(wait, p.requestNextFn)
		return
	}
	// Optional adapter pacing (FESTIVE's randomized scheduling).
	if pacer, ok := p.adapter.(RequestPacer); ok {
		if d := pacer.RequestDelay(p.stateLocked(now)); d > 0 {
			p.env.Schedule(d, p.requestNextFn)
			return
		}
	}

	q := p.ladder.Clamp(p.adapter.NextQuality(p.stateLocked(now)))
	p.segQuality = q
	p.segBytes = p.mpd.SegmentBytesAt(p.nextSeg, q)
	p.segRecv = 0
	p.segStartTTI = now
	p.downloading = true
	if p.cfg.RequestLatencyTTIs > 0 {
		if p.argSched != nil {
			p.argSched.ScheduleArg(p.cfg.RequestLatencyTTIs, p.sendFn, p.segBytes)
			return
		}
		bytes := p.segBytes
		p.env.Schedule(p.cfg.RequestLatencyTTIs, func() { p.flow.Send(bytes) })
	} else {
		p.flow.Send(p.segBytes)
	}
}

// stateLocked builds a State without re-advancing (advance already ran).
func (p *Player) stateLocked(now int64) State {
	return State{
		NowTTI:             now,
		BufferSeconds:      p.buffer,
		LastQuality:        p.lastQuality,
		SegmentsDownloaded: len(p.records),
		Ladder:             p.ladder,
		Playing:            p.playing,
	}
}

// onBytes handles radio-delivered bytes for the in-progress segment.
func (p *Player) onBytes(n int64) {
	if !p.downloading {
		return
	}
	p.segRecv += n
	if p.segRecv < p.segBytes {
		return
	}
	now := p.env.NowTTI()
	p.advance(now)

	dlSeconds := float64(now-p.segStartTTI) / lte.TTIsPerSecond
	if dlSeconds <= 0 {
		dlSeconds = 1.0 / lte.TTIsPerSecond
	}
	rec := SegmentRecord{
		Index:         p.nextSeg,
		Quality:       p.segQuality,
		RateBps:       p.ladder.Rate(p.segQuality),
		Bytes:         p.segBytes,
		StartTTI:      p.segStartTTI,
		EndTTI:        now,
		ThroughputBps: float64(p.segBytes) * 8 / dlSeconds,
	}
	p.records = append(p.records, rec)
	p.qualities = append(p.qualities, p.segQuality)
	p.lastQuality = p.segQuality
	p.nextSeg++
	p.downloading = false
	p.buffer += p.mpd.SegmentSeconds()
	p.maybeStartPlayback()
	p.adapter.OnSegmentComplete(rec)
	if p.OnSegment != nil {
		p.OnSegment(rec)
	}
	p.requestNext()
}
