package has

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLadderConstructors(t *testing.T) {
	tb := TestbedLadder()
	if tb.Len() != 8 || tb.Min() != 200_000 || tb.Max() != 2_750_000 {
		t.Fatalf("testbed ladder wrong: %v", tb)
	}
	sl := SimLadder()
	if sl.Len() != 6 || sl.Max() != 3_000_000 {
		t.Fatalf("sim ladder wrong: %v", sl)
	}
	fl := FineLadder()
	if fl.Len() != 12 || fl[0] != 100_000 || fl[11] != 1_200_000 {
		t.Fatalf("fine ladder wrong: %v", fl)
	}
	for _, l := range []Ladder{tb, sl, fl} {
		if err := l.Validate(); err != nil {
			t.Fatalf("paper ladder invalid: %v", err)
		}
	}
}

func TestLadderValidate(t *testing.T) {
	cases := []struct {
		name   string
		ladder Ladder
		ok     bool
	}{
		{"empty", Ladder{}, false},
		{"negative", Ladder{-1, 5}, false},
		{"zero", Ladder{0, 5}, false},
		{"descending", Ladder{5, 3}, false},
		{"duplicate", Ladder{5, 5}, false},
		{"valid", Ladder{1, 2, 3}, true},
		{"single", Ladder{7}, true},
	}
	for _, tc := range cases {
		err := tc.ladder.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestHighestAtMost(t *testing.T) {
	l := NewLadderKbps(100, 250, 500, 1000)
	cases := []struct {
		bps  float64
		want int
	}{
		{50_000, 0},  // below min: clamp to lowest
		{100_000, 0}, // exactly min
		{249_999, 0}, // just below second
		{250_000, 1}, // exactly second
		{600_000, 2}, // between
		{9e9, 3},     // above max
	}
	for _, tc := range cases {
		if got := l.HighestAtMost(tc.bps); got != tc.want {
			t.Errorf("HighestAtMost(%v) = %d, want %d", tc.bps, got, tc.want)
		}
	}
}

func TestHighestAtMostProperty(t *testing.T) {
	l := SimLadder()
	check := func(bpsRaw uint32) bool {
		bps := float64(bpsRaw)
		i := l.HighestAtMost(bps)
		if i < 0 || i >= l.Len() {
			return false
		}
		// The chosen rate is <= bps unless even the lowest exceeds bps.
		if l.Rate(i) > bps && i != 0 {
			return false
		}
		// No higher rate also fits.
		if i+1 < l.Len() && l.Rate(i+1) <= bps {
			return false
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClampAndRate(t *testing.T) {
	l := NewLadderKbps(100, 200)
	if l.Clamp(-5) != 0 || l.Clamp(0) != 0 || l.Clamp(1) != 1 || l.Clamp(9) != 1 {
		t.Fatal("Clamp wrong")
	}
	if l.Rate(-1) != 100_000 || l.Rate(99) != 200_000 {
		t.Fatal("Rate clamping wrong")
	}
}

func TestLadderClone(t *testing.T) {
	l := SimLadder()
	c := l.Clone()
	c[0] = 1
	if l[0] == 1 {
		t.Fatal("Clone aliased ladder")
	}
}

func TestNewMPD(t *testing.T) {
	m, err := NewMPD(SimLadder(), 10*time.Second, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Representations) != 6 {
		t.Fatalf("reps = %d", len(m.Representations))
	}
	if m.Representations[5].ID != "3000k" {
		t.Fatalf("rep ID = %q", m.Representations[5].ID)
	}
	if got := m.Ladder(); got.Len() != 6 || got.Max() != 3e6 {
		t.Fatalf("ladder round-trip wrong: %v", got)
	}
	// A 10 s segment at 1 Mbps is 1.25 MB.
	if got := m.SegmentBytes(3); got != 1_250_000 {
		t.Fatalf("SegmentBytes = %d", got)
	}
	if m.SegmentSeconds() != 10 {
		t.Fatalf("SegmentSeconds = %v", m.SegmentSeconds())
	}
}

func TestNewMPDValidation(t *testing.T) {
	if _, err := NewMPD(Ladder{}, time.Second, 10); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewMPD(SimLadder(), 0, 10); err == nil {
		t.Error("zero segment duration accepted")
	}
	if _, err := NewMPD(SimLadder(), time.Second, -1); err == nil {
		t.Error("negative segment count accepted")
	}
}

func TestSegmentBytesAtCBR(t *testing.T) {
	m, err := NewMPD(SimLadder(), 2*time.Second, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got := m.SegmentBytesAt(i, 3); got != m.SegmentBytes(3) {
			t.Fatalf("CBR segment %d sized %d", i, got)
		}
	}
}

func TestSegmentBytesAtVBR(t *testing.T) {
	m, err := NewMPD(SimLadder(), 2*time.Second, 1000)
	if err != nil {
		t.Fatal(err)
	}
	m.SizeJitter = 0.3
	base := m.SegmentBytes(3)
	var sum float64
	distinct := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		sz := m.SegmentBytesAt(i, 3)
		if sz < int64(float64(base)*0.69) || sz > int64(float64(base)*1.31) {
			t.Fatalf("segment %d size %d outside +/-30%% of %d", i, sz, base)
		}
		// Deterministic: same (idx, rep) -> same size.
		if again := m.SegmentBytesAt(i, 3); again != sz {
			t.Fatal("VBR sizing not deterministic")
		}
		sum += float64(sz)
		distinct[sz] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("VBR produced only %d distinct sizes", len(distinct))
	}
	mean := sum / 1000
	if mean < float64(base)*0.95 || mean > float64(base)*1.05 {
		t.Fatalf("VBR mean %v strays from base %d", mean, base)
	}
	// Jitter clamps at 0.9.
	m.SizeJitter = 5
	if sz := m.SegmentBytesAt(0, 0); sz <= 0 {
		t.Fatalf("clamped jitter produced size %d", sz)
	}
}
