package has

import (
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/sim"
	"github.com/flare-sim/flare/internal/transport"
)

// playerEnv is a one-cell harness for player tests.
type playerEnv struct {
	clock   sim.Clock
	events  sim.EventQueue
	enb     *lte.ENodeB
	flows   []*transport.Flow
	players []*Player
}

func newPlayerEnv(t *testing.T, iTbs, numUEs int) *playerEnv {
	t.Helper()
	return &playerEnv{
		enb: lte.NewENodeB(lte.NewUniformStaticChannel(numUEs, iTbs), lte.PFScheduler{}),
	}
}

func (e *playerEnv) NowTTI() int64 { return e.clock.TTI() }

func (e *playerEnv) Schedule(delay int64, fn func()) {
	if delay < 1 {
		delay = 1
	}
	e.events.Schedule(e.clock.TTI()+delay, fn)
}

func (e *playerEnv) addPlayer(t *testing.T, ue int, mpd *MPD, a Adapter, cfg PlayerConfig) *Player {
	t.Helper()
	b := &lte.Bearer{ID: len(e.flows), UE: ue, Class: lte.ClassVideo}
	if _, err := e.enb.AddBearer(b); err != nil {
		t.Fatal(err)
	}
	f, err := transport.NewFlow(e, b, transport.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlayer(e, f, mpd, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.flows = append(e.flows, f)
	e.players = append(e.players, p)
	return p
}

func (e *playerEnv) run(n int64) {
	for i := int64(0); i < n; i++ {
		tti := e.clock.TTI()
		e.events.RunDue(tti)
		for _, f := range e.flows {
			f.Tick()
		}
		e.enb.RunTTI(tti)
		e.clock.Advance()
	}
}

// fixedAdapter always picks the same quality.
type fixedAdapter struct {
	quality int
	records []SegmentRecord
}

func (a *fixedAdapter) Name() string                      { return "fixed" }
func (a *fixedAdapter) NextQuality(State) int             { return a.quality }
func (a *fixedAdapter) OnSegmentComplete(r SegmentRecord) { a.records = append(a.records, r) }

func testMPD(t *testing.T, segs int) *MPD {
	t.Helper()
	m, err := NewMPD(SimLadder(), 2*time.Second, segs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewPlayerValidation(t *testing.T) {
	env := newPlayerEnv(t, 10, 1)
	mpd := testMPD(t, 10)
	b := &lte.Bearer{ID: 0, UE: 0}
	if _, err := env.enb.AddBearer(b); err != nil {
		t.Fatal(err)
	}
	f, err := transport.NewFlow(env, b, transport.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlayer(env, f, mpd, nil, DefaultPlayerConfig()); err == nil {
		t.Error("nil adapter accepted")
	}
	bad := DefaultPlayerConfig()
	bad.StartupSegments = 0
	if _, err := NewPlayer(env, f, mpd, &fixedAdapter{}, bad); err == nil {
		t.Error("zero startup segments accepted")
	}
	bad = DefaultPlayerConfig()
	bad.MaxBufferSeconds = 0
	if _, err := NewPlayer(env, f, mpd, &fixedAdapter{}, bad); err == nil {
		t.Error("zero max buffer accepted")
	}
	bad = DefaultPlayerConfig()
	bad.RequestLatencyTTIs = -1
	if _, err := NewPlayer(env, f, mpd, &fixedAdapter{}, bad); err == nil {
		t.Error("negative request latency accepted")
	}
}

func TestPlayerDownloadsAllSegments(t *testing.T) {
	env := newPlayerEnv(t, 12, 1) // plenty of capacity
	mpd := testMPD(t, 5)
	a := &fixedAdapter{quality: 1} // 250 kbps
	p := env.addPlayer(t, 0, mpd, a, DefaultPlayerConfig())
	p.Start()
	env.run(30_000) // 30 s for a 10 s presentation
	if !p.Done() {
		t.Fatal("player not done")
	}
	if got := len(p.Records()); got != 5 {
		t.Fatalf("downloaded %d segments, want 5", got)
	}
	if got := len(a.records); got != 5 {
		t.Fatalf("adapter saw %d completions, want 5", got)
	}
	for i, rec := range p.Records() {
		if rec.Index != i {
			t.Fatalf("record %d has index %d", i, rec.Index)
		}
		if rec.Quality != 1 || rec.RateBps != 250_000 {
			t.Fatalf("record %d wrong quality: %+v", i, rec)
		}
		if rec.Bytes != mpd.SegmentBytes(1) {
			t.Fatalf("record %d wrong size: %d", i, rec.Bytes)
		}
		if rec.ThroughputBps <= 0 {
			t.Fatalf("record %d non-positive throughput", i)
		}
		if rec.EndTTI <= rec.StartTTI {
			t.Fatalf("record %d zero download time", i)
		}
	}
}

func TestPlayerNoStallWithAmpleBandwidth(t *testing.T) {
	env := newPlayerEnv(t, 15, 1)
	mpd := testMPD(t, 20)
	p := env.addPlayer(t, 0, mpd, &fixedAdapter{quality: 0}, DefaultPlayerConfig())
	p.Start()
	env.run(60_000)
	if p.StallSeconds() != 0 {
		t.Fatalf("stalled %v s with ample bandwidth", p.StallSeconds())
	}
	if p.StallCount() != 0 {
		t.Fatalf("stall count %d", p.StallCount())
	}
}

func TestPlayerStallsWhenOvercommitted(t *testing.T) {
	// Highest quality (3 Mbps) on a ~1.2 Mbps link must rebuffer.
	env := newPlayerEnv(t, 0, 1)
	mpd := testMPD(t, 30)
	p := env.addPlayer(t, 0, mpd, &fixedAdapter{quality: 5}, DefaultPlayerConfig())
	p.Start()
	env.run(120_000)
	if p.StallSeconds() == 0 {
		t.Fatal("no stall despite 3 Mbps video on ~1.2 Mbps link")
	}
	if p.StallCount() == 0 {
		t.Fatal("stall seconds accrued but no stall events counted")
	}
}

func TestPlayerBufferCapRespected(t *testing.T) {
	env := newPlayerEnv(t, 15, 1)
	mpd := testMPD(t, 200)
	cfg := DefaultPlayerConfig()
	cfg.MaxBufferSeconds = 8
	p := env.addPlayer(t, 0, mpd, &fixedAdapter{quality: 0}, cfg)
	p.Start()
	maxSeen := 0.0
	for i := 0; i < 600; i++ {
		env.run(100)
		if b := p.BufferSeconds(); b > maxSeen {
			maxSeen = b
		}
	}
	// One segment of slack beyond the cap is permitted (the request
	// fires just below the cap and adds a whole segment).
	limit := cfg.MaxBufferSeconds + mpd.SegmentSeconds() + 0.1
	if maxSeen > limit {
		t.Fatalf("buffer reached %v s, cap %v + segment", maxSeen, cfg.MaxBufferSeconds)
	}
	if maxSeen < cfg.MaxBufferSeconds-2 {
		t.Fatalf("buffer never approached cap: max %v", maxSeen)
	}
}

func TestPlayerBufferDrainsInRealTime(t *testing.T) {
	env := newPlayerEnv(t, 15, 1)
	mpd := testMPD(t, 3)
	p := env.addPlayer(t, 0, mpd, &fixedAdapter{quality: 0}, DefaultPlayerConfig())
	p.Start()
	env.run(1_000) // all 3 tiny segments (6 s of video) download fast
	if !p.Done() {
		t.Fatal("short presentation should be done")
	}
	bufAfterDownload := p.BufferSeconds()
	if bufAfterDownload < 3 {
		t.Fatalf("buffer only %v s after full download", bufAfterDownload)
	}
	env.run(2_000) // play 2 s
	drained := bufAfterDownload - p.BufferSeconds()
	if drained < 1.9 || drained > 2.1 {
		t.Fatalf("buffer drained %v s over 2 s of playback", drained)
	}
}

func TestPlayerEndOfPresentationIsNotAStall(t *testing.T) {
	env := newPlayerEnv(t, 15, 1)
	mpd := testMPD(t, 3)
	p := env.addPlayer(t, 0, mpd, &fixedAdapter{quality: 0}, DefaultPlayerConfig())
	p.Start()
	env.run(60_000) // way past the end of playback
	if p.StallSeconds() != 0 {
		t.Fatalf("end of playback counted as stall: %v s", p.StallSeconds())
	}
}

func TestPlayerSelectedRatesAndQualities(t *testing.T) {
	env := newPlayerEnv(t, 12, 1)
	mpd := testMPD(t, 4)
	p := env.addPlayer(t, 0, mpd, &fixedAdapter{quality: 2}, DefaultPlayerConfig())
	p.Start()
	env.run(30_000)
	qs := p.Qualities()
	rs := p.SelectedRates()
	if len(qs) != 4 || len(rs) != 4 {
		t.Fatalf("lengths %d/%d, want 4", len(qs), len(rs))
	}
	for i := range qs {
		if qs[i] != 2 || rs[i] != 500_000 {
			t.Fatalf("segment %d: quality %d rate %v", i, qs[i], rs[i])
		}
	}
}

// switchingAdapter alternates between two qualities.
type switchingAdapter struct{ n int }

func (a *switchingAdapter) Name() string { return "switching" }
func (a *switchingAdapter) NextQuality(State) int {
	a.n++
	return a.n % 2
}
func (a *switchingAdapter) OnSegmentComplete(SegmentRecord) {}

func TestPlayerTracksQualitySwitches(t *testing.T) {
	env := newPlayerEnv(t, 12, 1)
	mpd := testMPD(t, 6)
	p := env.addPlayer(t, 0, mpd, &switchingAdapter{}, DefaultPlayerConfig())
	p.Start()
	env.run(40_000)
	qs := p.Qualities()
	if len(qs) != 6 {
		t.Fatalf("got %d segments", len(qs))
	}
	for i := 1; i < len(qs); i++ {
		if qs[i] == qs[i-1] {
			t.Fatalf("switching adapter produced repeat at %d: %v", i, qs)
		}
	}
}

// pacingAdapter asks for a fixed delay before every request after the
// first, to exercise the RequestPacer extension.
type pacingAdapter struct {
	fixedAdapter
	delayed  int
	requests int
}

func (a *pacingAdapter) RequestDelay(State) int64 {
	a.requests++
	if a.requests > 1 && a.requests%2 == 0 {
		a.delayed++
		return 500
	}
	return 0
}

func TestPlayerHonorsRequestPacer(t *testing.T) {
	env := newPlayerEnv(t, 12, 1)
	mpd := testMPD(t, 5)
	a := &pacingAdapter{}
	p := env.addPlayer(t, 0, mpd, a, DefaultPlayerConfig())
	p.Start()
	env.run(40_000)
	if !p.Done() {
		t.Fatal("pacing should only delay, not block, downloads")
	}
	if a.delayed == 0 {
		t.Fatal("pacer was never consulted")
	}
}

func TestPlayerStateSnapshot(t *testing.T) {
	env := newPlayerEnv(t, 12, 1)
	mpd := testMPD(t, 10)
	p := env.addPlayer(t, 0, mpd, &fixedAdapter{quality: 1}, DefaultPlayerConfig())
	st := p.State()
	if st.LastQuality != -1 || st.SegmentsDownloaded != 0 || st.Playing {
		t.Fatalf("initial state wrong: %+v", st)
	}
	p.Start()
	env.run(20_000)
	st = p.State()
	if st.LastQuality != 1 || st.SegmentsDownloaded == 0 {
		t.Fatalf("running state wrong: %+v", st)
	}
	if st.Ladder.Len() != 6 {
		t.Fatalf("state ladder missing: %+v", st)
	}
}

func TestPlayerStallAndResumeCycle(t *testing.T) {
	// A trace channel that is generous, then dead, then generous forces
	// a stall and a resume; the counters must reflect exactly one
	// rebuffering episode.
	mpd := testMPD(t, 60)
	env := &playerEnv{}
	tr := make([]int, 60)
	for i := range tr {
		switch {
		case i < 10:
			tr[i] = 14 // rich start
		case i < 25:
			tr[i] = 0 // collapse
		default:
			tr[i] = 14
		}
	}
	ch, err := lte.NewTraceChannel([][]int{tr}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	env.enb = lte.NewENodeB(ch, lte.PFScheduler{})
	cfg := DefaultPlayerConfig()
	cfg.MaxBufferSeconds = 4                                      // tiny cushion so the collapse bites
	p := env.addPlayer(t, 0, mpd, &fixedAdapter{quality: 4}, cfg) // 2 Mbps fixed
	p.Start()
	env.run(60_000)
	if p.StallSeconds() <= 0 {
		t.Fatal("no stall during the 15 s dead zone")
	}
	if p.StallCount() < 1 {
		t.Fatal("stall seconds without stall events")
	}
	// It must have resumed and kept downloading after the dead zone.
	if len(p.Records()) < 20 {
		t.Fatalf("only %d segments; player never recovered", len(p.Records()))
	}
}

func TestPlayerThroughputSamplesReflectLink(t *testing.T) {
	env := newPlayerEnv(t, 10, 1) // ~9 Mbps cell
	mpd := testMPD(t, 8)
	p := env.addPlayer(t, 0, mpd, &fixedAdapter{quality: 3}, DefaultPlayerConfig())
	p.Start()
	env.run(30_000)
	for _, rec := range p.Records() {
		if rec.ThroughputBps > 1.2*lte.CellRateBps(10) {
			t.Fatalf("segment %d measured %v bps on a %v link",
				rec.Index, rec.ThroughputBps, lte.CellRateBps(10))
		}
	}
}

func TestPlayerStartupDelay(t *testing.T) {
	env := newPlayerEnv(t, 12, 1)
	mpd := testMPD(t, 10)
	p := env.addPlayer(t, 0, mpd, &fixedAdapter{quality: 1}, DefaultPlayerConfig())
	if p.StartupDelaySeconds() != -1 {
		t.Fatal("startup delay before Start should be -1")
	}
	env.run(500) // let time pass before the player starts
	p.Start()
	env.run(20_000)
	d := p.StartupDelaySeconds()
	// Two 250 kbps segments on a ~11 Mbps link: a fraction of a second,
	// but strictly positive and relative to Start, not to t=0.
	if d <= 0 || d > 5 {
		t.Fatalf("startup delay %v s", d)
	}
}
