// Package has implements the HTTP-adaptive-streaming substrate: bitrate
// ladders, the Media Presentation Description (MPD) model, and the client
// player state machine (buffering, playback, stalls, segment download
// pacing, and per-segment throughput sampling).
//
// The player is algorithm-agnostic: bitrate decisions are delegated to an
// Adapter, implemented by the client-side baselines (FESTIVE, GOOGLE), the
// AVIS client, and the FLARE plugin.
package has

import (
	"fmt"
)

// Ladder is an ascending list of available video bitrates in bits/s —
// the r_u vector of the paper.
type Ladder []float64

// NewLadderKbps builds a ladder from Kbps values.
func NewLadderKbps(kbps ...float64) Ladder {
	l := make(Ladder, len(kbps))
	for i, k := range kbps {
		l[i] = k * 1000
	}
	return l
}

// TestbedLadder returns the eight encodings used in the paper's femtocell
// experiments: 200, 310, 450, 790, 1100, 1320, 2280, 2750 Kbps.
func TestbedLadder() Ladder {
	return NewLadderKbps(200, 310, 450, 790, 1100, 1320, 2280, 2750)
}

// SimLadder returns the Table III simulation ladder:
// 100, 250, 500, 1000, 2000, 3000 Kbps.
func SimLadder() Ladder {
	return NewLadderKbps(100, 250, 500, 1000, 2000, 3000)
}

// FineLadder returns the dense ladder used in the paper's Figures 8-10:
// 100, 200, ..., 1200 Kbps.
func FineLadder() Ladder {
	kbps := make([]float64, 12)
	for i := range kbps {
		kbps[i] = float64((i + 1) * 100)
	}
	return NewLadderKbps(kbps...)
}

// Validate checks that the ladder is non-empty, positive, and strictly
// ascending.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("has: empty ladder")
	}
	for i, r := range l {
		if r <= 0 {
			return fmt.Errorf("has: ladder rate %d is non-positive (%v)", i, r)
		}
		if i > 0 && r <= l[i-1] {
			return fmt.Errorf("has: ladder not strictly ascending at %d (%v <= %v)", i, r, l[i-1])
		}
	}
	return nil
}

// Len returns the number of encodings.
func (l Ladder) Len() int { return len(l) }

// Rate returns the bitrate at index i, clamping out-of-range indices.
func (l Ladder) Rate(i int) float64 {
	return l[l.Clamp(i)]
}

// Clamp limits an index to [0, Len-1]. It panics on an empty ladder.
func (l Ladder) Clamp(i int) int {
	if len(l) == 0 {
		panic("has: Clamp on empty ladder")
	}
	if i < 0 {
		return 0
	}
	if i >= len(l) {
		return len(l) - 1
	}
	return i
}

// HighestAtMost returns the index of the highest rate <= bps, or 0 when
// every rate exceeds bps (a player must always pick something).
//
// The binary search is written out rather than using sort.Search: the
// closure sort.Search takes escapes to the heap, and this sits inside
// the MCKP solve (core.VideoFlow.MaxLevel) on the //flare:hotpath.
func (l Ladder) HighestAtMost(bps float64) int {
	// Find the first index with rate > bps.
	lo, hi := 0, len(l)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid] > bps {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// Min returns the lowest rate.
func (l Ladder) Min() float64 { return l[0] }

// Max returns the highest rate.
func (l Ladder) Max() float64 { return l[len(l)-1] }

// Clone returns a copy of the ladder.
func (l Ladder) Clone() Ladder {
	out := make(Ladder, len(l))
	copy(out, l)
	return out
}
