package has

import (
	"fmt"
	"time"
)

// Representation describes one encoding of the video, mirroring a DASH
// MPD Representation element.
type Representation struct {
	// ID names the representation (e.g. "790k").
	ID string `json:"id"`
	// BandwidthBps is the encoding bitrate in bits/s.
	BandwidthBps float64 `json:"bandwidth_bps"`
}

// MPD is the Media Presentation Description: segment timing plus the
// available representations. The FLARE plugin extracts the bitrate ladder
// from it and registers the ladder with the OneAPI server.
type MPD struct {
	// SegmentDuration is the play length of every segment.
	SegmentDuration time.Duration `json:"segment_duration"`
	// Representations are the available encodings, ascending by rate.
	Representations []Representation `json:"representations"`
	// TotalSegments is the number of segments in the presentation;
	// 0 means unbounded (live).
	TotalSegments int `json:"total_segments"`
	// SizeJitter enables VBR encodings: segment i at representation r
	// is sized base*(1 + SizeJitter*u(i, r)) with u deterministic in
	// [-1, 1]. 0 (the default) is constant-bitrate. Values are clamped
	// to [0, 0.9] when sizing.
	SizeJitter float64 `json:"size_jitter,omitempty"`
}

// NewMPD builds an MPD from a ladder.
func NewMPD(ladder Ladder, segDur time.Duration, totalSegments int) (*MPD, error) {
	if err := ladder.Validate(); err != nil {
		return nil, err
	}
	if segDur <= 0 {
		return nil, fmt.Errorf("has: segment duration must be positive, got %v", segDur)
	}
	if totalSegments < 0 {
		return nil, fmt.Errorf("has: negative segment count %d", totalSegments)
	}
	reps := make([]Representation, len(ladder))
	for i, r := range ladder {
		reps[i] = Representation{
			ID:           fmt.Sprintf("%.0fk", r/1000),
			BandwidthBps: r,
		}
	}
	return &MPD{
		SegmentDuration: segDur,
		Representations: reps,
		TotalSegments:   totalSegments,
	}, nil
}

// Ladder extracts the bitrate ladder from the representations.
func (m *MPD) Ladder() Ladder {
	l := make(Ladder, len(m.Representations))
	for i, r := range m.Representations {
		l[i] = r.BandwidthBps
	}
	return l
}

// Rate returns the bitrate of the representation at the given index
// (clamped to the available range, like Ladder.Rate) without
// materialising a Ladder. It panics when the MPD has no
// representations, mirroring Ladder.Clamp.
func (m *MPD) Rate(quality int) float64 {
	n := len(m.Representations)
	if n == 0 {
		panic("has: Rate on MPD with no representations")
	}
	if quality < 0 {
		quality = 0
	} else if quality >= n {
		quality = n - 1
	}
	return m.Representations[quality].BandwidthBps
}

// SegmentBytes returns the size in bytes of one segment at the given
// representation index (clamped).
func (m *MPD) SegmentBytes(quality int) int64 {
	return int64(m.Rate(quality) * m.SegmentDuration.Seconds() / 8)
}

// SegmentBytesAt returns the size of segment idx at the given
// representation, applying the deterministic VBR jitter. CBR
// presentations (SizeJitter 0) size every segment identically.
func (m *MPD) SegmentBytesAt(idx, quality int) int64 {
	base := m.SegmentBytes(quality)
	j := m.SizeJitter
	if j <= 0 {
		return base
	}
	if j > 0.9 {
		j = 0.9
	}
	return int64(float64(base) * (1 + j*vbrNoise(idx, quality)))
}

// vbrNoise maps (segment, representation) to a deterministic value in
// [-1, 1] via a splitmix64-style mix, so every player and the media
// server agree on each segment's size.
func vbrNoise(idx, quality int) float64 {
	z := uint64(idx)*0x9e3779b97f4a7c15 + uint64(quality)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<52) - 1 // [0, 2) - 1 -> [-1, 1)
}

// SegmentSeconds returns the segment duration in seconds.
func (m *MPD) SegmentSeconds() float64 { return m.SegmentDuration.Seconds() }
