package has

import "testing"

func FuzzHighestAtMost(f *testing.F) {
	f.Add(0.0)
	f.Add(99_999.0)
	f.Add(100_000.0)
	f.Add(2_999_999.0)
	f.Add(3_000_000.0)
	f.Add(1e18)
	f.Add(-5.0)
	l := SimLadder()
	f.Fuzz(func(t *testing.T, bps float64) {
		i := l.HighestAtMost(bps)
		if i < 0 || i >= l.Len() {
			t.Fatalf("index %d out of range for %v", i, bps)
		}
		if i > 0 && l.Rate(i) > bps {
			t.Fatalf("rate %v above target %v at non-floor index", l.Rate(i), bps)
		}
		if i+1 < l.Len() && l.Rate(i+1) <= bps {
			t.Fatalf("higher rung %v also fits %v", l.Rate(i+1), bps)
		}
	})
}

func FuzzSegmentBytesAt(f *testing.F) {
	f.Add(0, 0, 0.0)
	f.Add(100, 3, 0.3)
	f.Add(-1, -1, 2.0)
	f.Add(1<<30, 99, 0.9)
	f.Fuzz(func(t *testing.T, idx, quality int, jitter float64) {
		m, err := NewMPD(SimLadder(), 2_000_000_000, 0) // 2 s
		if err != nil {
			t.Fatal(err)
		}
		m.SizeJitter = jitter
		sz := m.SegmentBytesAt(idx, quality)
		if sz <= 0 {
			t.Fatalf("segment size %d for idx=%d q=%d jitter=%v", sz, idx, quality, jitter)
		}
		base := m.SegmentBytes(quality)
		if jitter > 0 {
			lo, hi := int64(float64(base)*0.05), int64(float64(base)*1.95)
			if sz < lo || sz > hi {
				t.Fatalf("size %d outside clamp window around %d", sz, base)
			}
		} else if sz != base {
			t.Fatalf("CBR size %d != base %d", sz, base)
		}
	})
}
