package experiments

import (
	"fmt"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/metrics"
)

// coexistConfig is the ext-coexist scenario: one cell, half the video
// population FLARE-coordinated and half running unmodified FESTIVE, as
// a first-class mixed-scheme deployment (Config.VideoGroups). The FLARE
// controller sees the FESTIVE flows as competing data traffic; the
// radio serves FLARE's GBRs first and everything else proportionally
// fair. The cell is the dynamic testbed scenario (2 s segments, cyclic
// MCS) — the varying channel is what separates coordinated stability
// from FESTIVE's throughput-chasing oscillation, exactly as in Table
// II. Alpha is the Table IV default: the "data" reservation here exists
// to keep the conventional players alive, not to favour them.
func coexistConfig(scale Scale) cellsim.Config {
	cfg := testbedConfig(cellsim.SchemeFLARE, true, scale)
	cfg.NumVideo = 0
	cfg.NumData = 0
	cfg.Flare.Alpha = 1
	cfg.VideoGroups = []cellsim.FlowGroup{
		{Scheme: cellsim.SchemeFLARE, Count: 4},
		{Scheme: cellsim.SchemeFESTIVE, Count: 4},
	}
	return cfg
}

// RunExtCoexist evaluates the paper's Section V deployment claim: FLARE
// "can coexist with conventional HAS players by servicing their traffic
// like other data traffic without any bitrate guarantees", and FLARE
// users "have an incentive to adopt FLARE in order to receive GBR video
// rates". We run 4 coordinated and 4 conventional (FESTIVE) players in
// one cell via the mixed-scheme driver machinery and compare the two
// groups' outcomes.
func RunExtCoexist(scale Scale) (*Report, error) {
	rep := &Report{
		ID:    "ext-coexist",
		Title: "Extension — FLARE + conventional players in one cell (Section V)",
	}
	results, err := runMany(coexistConfig(scale), scale)
	if err != nil {
		return nil, err
	}

	var flareRates, flareChanges, flareStalls []float64
	var legacyRates, legacyChanges, legacyStalls []float64
	for _, r := range results {
		for _, c := range r.ClientsByScheme(cellsim.SchemeFLARE) {
			flareRates = append(flareRates, c.AvgRateBps)
			flareChanges = append(flareChanges, float64(c.NumChanges))
			flareStalls = append(flareStalls, c.StallSeconds)
		}
		for _, c := range r.ClientsByScheme(cellsim.SchemeFESTIVE) {
			legacyRates = append(legacyRates, c.AvgRateBps)
			legacyChanges = append(legacyChanges, float64(c.NumChanges))
			legacyStalls = append(legacyStalls, c.StallSeconds)
		}
	}

	tbl := metrics.NewTable("Coordinated (FLARE) vs conventional (FESTIVE) players sharing one cell",
		"FLARE", "FESTIVE")
	tbl.AddFloatRow("Average video rate (Kbps)", "%.0f",
		metrics.Mean(flareRates)/1000, metrics.Mean(legacyRates)/1000)
	tbl.AddFloatRow("Average number of bitrate changes", "%.1f",
		metrics.Mean(flareChanges), metrics.Mean(legacyChanges))
	tbl.AddFloatRow("Average rebuffering (sec)", "%.1f",
		metrics.Mean(flareStalls), metrics.Mean(legacyStalls))
	rep.Tables = append(rep.Tables, tbl)

	rep.Series = append(rep.Series,
		metrics.SeriesFromCDF("flare/avg_bitrate_bps", metrics.NewCDF(flareRates), cdfPoints),
		metrics.SeriesFromCDF("festive/avg_bitrate_bps", metrics.NewCDF(legacyRates), cdfPoints),
	)
	rep.Notef("FLARE players: %.0f Kbps, %.1f changes, %.1f s stalled; FESTIVE players: %.0f Kbps, %.1f changes, %.1f s stalled — the adoption incentive is the gap",
		metrics.Mean(flareRates)/1000, metrics.Mean(flareChanges), metrics.Mean(flareStalls),
		metrics.Mean(legacyRates)/1000, metrics.Mean(legacyChanges), metrics.Mean(legacyStalls))
	return rep, nil
}

// RunExtABR compares FLARE against the wider client-side ABR literature
// the paper cites: FESTIVE and GOOGLE (the paper's baselines) plus
// buffer-based BBA-0 and RobustMPC (extension baselines).
func RunExtABR(scale Scale) (*Report, error) {
	rep := &Report{
		ID:    "ext-abr",
		Title: "Extension — FLARE vs the client-side ABR literature",
	}
	schemes := []cellsim.Scheme{
		cellsim.SchemeFLARE, cellsim.SchemeFESTIVE, cellsim.SchemeGOOGLE,
		cellsim.SchemeBBA, cellsim.SchemeMPC,
	}
	tbl := metrics.NewTable("Mobile scenario, 8 clients",
		"rate Kbps", "changes", "stall s", "QoE")
	for _, scheme := range schemes {
		results, err := runMany(simConfig(scheme, true, scale), scale)
		if err != nil {
			return nil, err
		}
		rates := pooled(results, (*cellsim.Result).AvgRates)
		changes := pooled(results, (*cellsim.Result).Changes)
		var stalls, scores []float64
		for _, r := range results {
			for _, c := range r.Clients {
				stalls = append(stalls, c.StallSeconds)
				scores = append(scores, c.QoEScore)
			}
		}
		tbl.AddRow(scheme.String(),
			fmt.Sprintf("%.0f", metrics.Mean(rates)/1000),
			fmt.Sprintf("%.1f", metrics.Mean(changes)),
			fmt.Sprintf("%.1f", metrics.Mean(stalls)),
			fmt.Sprintf("%.0f", metrics.Mean(scores)),
		)
		rep.Series = append(rep.Series,
			metrics.SeriesFromCDF(fmt.Sprintf("%s/avg_bitrate_bps", scheme),
				metrics.NewCDF(rates), cdfPoints))
		rep.Notef("%s: %.0f Kbps, %.1f changes, %.1f s stalled, QoE %.0f",
			scheme, metrics.Mean(rates)/1000, metrics.Mean(changes), metrics.Mean(stalls), metrics.Mean(scores))
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}
