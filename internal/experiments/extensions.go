package experiments

import (
	"fmt"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/metrics"
)

// RunExtCoexist evaluates the paper's Section V deployment claim: FLARE
// "can coexist with conventional HAS players by servicing their traffic
// like other data traffic without any bitrate guarantees", and FLARE
// users "have an incentive to adopt FLARE in order to receive GBR video
// rates". We mix coordinated and legacy (FESTIVE) players in one FLARE
// cell and compare their outcomes.
func RunExtCoexist(scale Scale) (*Report, error) {
	rep := &Report{
		ID:    "ext-coexist",
		Title: "Extension — FLARE + conventional players in one cell (Section V)",
	}
	cfg := simConfig(cellsim.SchemeFLARE, false, scale)
	cfg.NumVideo = 4
	cfg.NumLegacy = 4
	results, err := runMany(cfg, scale)
	if err != nil {
		return nil, err
	}

	var flareRates, flareChanges, flareStalls []float64
	var legacyRates, legacyChanges, legacyStalls []float64
	for _, r := range results {
		for _, c := range r.Clients {
			flareRates = append(flareRates, c.AvgRateBps)
			flareChanges = append(flareChanges, float64(c.NumChanges))
			flareStalls = append(flareStalls, c.StallSeconds)
		}
		for _, c := range r.Legacy {
			legacyRates = append(legacyRates, c.AvgRateBps)
			legacyChanges = append(legacyChanges, float64(c.NumChanges))
			legacyStalls = append(legacyStalls, c.StallSeconds)
		}
	}

	tbl := metrics.NewTable("Coordinated (FLARE) vs legacy (FESTIVE) players sharing one cell",
		"FLARE", "legacy")
	tbl.AddFloatRow("Average video rate (Kbps)", "%.0f",
		metrics.Mean(flareRates)/1000, metrics.Mean(legacyRates)/1000)
	tbl.AddFloatRow("Average number of bitrate changes", "%.1f",
		metrics.Mean(flareChanges), metrics.Mean(legacyChanges))
	tbl.AddFloatRow("Average rebuffering (sec)", "%.1f",
		metrics.Mean(flareStalls), metrics.Mean(legacyStalls))
	rep.Tables = append(rep.Tables, tbl)

	rep.Series = append(rep.Series,
		metrics.SeriesFromCDF("flare/avg_bitrate_bps", metrics.NewCDF(flareRates), cdfPoints),
		metrics.SeriesFromCDF("legacy/avg_bitrate_bps", metrics.NewCDF(legacyRates), cdfPoints),
	)
	rep.Notef("FLARE players: %.0f Kbps, %.1f changes; legacy players: %.0f Kbps, %.1f changes — the adoption incentive is the gap",
		metrics.Mean(flareRates)/1000, metrics.Mean(flareChanges),
		metrics.Mean(legacyRates)/1000, metrics.Mean(legacyChanges))
	return rep, nil
}

// RunExtABR compares FLARE against the wider client-side ABR literature
// the paper cites: FESTIVE and GOOGLE (the paper's baselines) plus
// buffer-based BBA-0 and RobustMPC (extension baselines).
func RunExtABR(scale Scale) (*Report, error) {
	rep := &Report{
		ID:    "ext-abr",
		Title: "Extension — FLARE vs the client-side ABR literature",
	}
	schemes := []cellsim.Scheme{
		cellsim.SchemeFLARE, cellsim.SchemeFESTIVE, cellsim.SchemeGOOGLE,
		cellsim.SchemeBBA, cellsim.SchemeMPC,
	}
	tbl := metrics.NewTable("Mobile scenario, 8 clients",
		"rate Kbps", "changes", "stall s", "QoE")
	for _, scheme := range schemes {
		results, err := runMany(simConfig(scheme, true, scale), scale)
		if err != nil {
			return nil, err
		}
		rates := pooled(results, (*cellsim.Result).AvgRates)
		changes := pooled(results, (*cellsim.Result).Changes)
		var stalls, scores []float64
		for _, r := range results {
			for _, c := range r.Clients {
				stalls = append(stalls, c.StallSeconds)
				scores = append(scores, c.QoEScore)
			}
		}
		tbl.AddRow(scheme.String(),
			fmt.Sprintf("%.0f", metrics.Mean(rates)/1000),
			fmt.Sprintf("%.1f", metrics.Mean(changes)),
			fmt.Sprintf("%.1f", metrics.Mean(stalls)),
			fmt.Sprintf("%.0f", metrics.Mean(scores)),
		)
		rep.Series = append(rep.Series,
			metrics.SeriesFromCDF(fmt.Sprintf("%s/avg_bitrate_bps", scheme),
				metrics.NewCDF(rates), cdfPoints))
		rep.Notef("%s: %.0f Kbps, %.1f changes, %.1f s stalled, QoE %.0f",
			scheme, metrics.Mean(rates)/1000, metrics.Mean(changes), metrics.Mean(stalls), metrics.Mean(scores))
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}
