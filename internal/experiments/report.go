// Package experiments defines one reproducible experiment per table and
// figure in the paper's evaluation (Tables I-II, Figures 4-12), shared
// by cmd/flarebench and the repository benchmarks. Each experiment runs
// the relevant cellsim scenarios, aggregates the paper's metrics, and
// renders a text table and/or CSV plot series.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/flare-sim/flare/internal/metrics"
)

// Report is one experiment's renderable outcome.
type Report struct {
	// ID is the experiment identifier (e.g. "table1", "fig6").
	ID string
	// Title describes the paper artefact reproduced.
	Title string
	// Tables are text tables (Tables I/II style).
	Tables []*metrics.Table
	// Series are plottable figure data (CDFs, time series, sweeps).
	Series []metrics.Series
	// Notes carry headline numbers and observations for EXPERIMENTS.md.
	Notes []string
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(r.Series) > 0 {
		fmt.Fprintf(&b, "(%d plot series; write with -out)\n", len(r.Series))
	}
	return b.String()
}

// WriteFiles stores the report under dir: <id>.txt for the text view and
// <id>.csv for the plot series (when any).
func (r *Report) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: create %s: %w", dir, err)
	}
	txt := filepath.Join(dir, r.ID+".txt")
	if err := os.WriteFile(txt, []byte(r.String()), 0o644); err != nil {
		return fmt.Errorf("experiments: write %s: %w", txt, err)
	}
	if len(r.Series) > 0 {
		csvPath := filepath.Join(dir, r.ID+".csv")
		f, err := os.Create(csvPath)
		if err != nil {
			return fmt.Errorf("experiments: create %s: %w", csvPath, err)
		}
		defer f.Close()
		if err := metrics.WriteSeriesCSV(f, r.Series...); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("experiments: close %s: %w", csvPath, err)
		}
	}
	return nil
}

// Scale shrinks experiments for fast runs. Full reproduces the paper's
// durations and run counts; Quick is sized for go test / benchmarks.
type Scale struct {
	// DurationFactor multiplies scenario durations (1 = paper scale).
	DurationFactor float64
	// Runs is the number of seeded repetitions per data point
	// (the paper uses 20).
	Runs int
	// Parallel is the number of concurrent runs (0 = GOMAXPROCS).
	Parallel int
}

// Full is the paper-scale configuration.
func Full() Scale { return Scale{DurationFactor: 1, Runs: 20} }

// Quick is the scaled-down configuration used by tests and benchmarks.
func Quick() Scale { return Scale{DurationFactor: 0.1, Runs: 3} }

func (s Scale) normalized() Scale {
	if s.DurationFactor <= 0 {
		s.DurationFactor = 1
	}
	if s.Runs <= 0 {
		s.Runs = 1
	}
	return s
}

// Experiment pairs an identifier with its runner.
type Experiment struct {
	// ID matches the DESIGN.md per-experiment index.
	ID string
	// Title is the paper artefact.
	Title string
	// Run executes the experiment.
	Run func(scale Scale) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I — static testbed summary (FESTIVE/GOOGLE/FLARE)", Run: RunTable1},
		{ID: "table2", Title: "Table II — dynamic testbed summary (FESTIVE/GOOGLE/FLARE)", Run: RunTable2},
		{ID: "fig4", Title: "Figure 4 — static scenario time series", Run: RunFig4},
		{ID: "fig5", Title: "Figure 5 — dynamic scenario time series", Run: RunFig5},
		{ID: "fig6", Title: "Figure 6 — static CDFs over 160 clients (FLARE/AVIS/FESTIVE)", Run: RunFig6},
		{ID: "fig7", Title: "Figure 7 — mobile CDFs over 160 clients (FLARE/AVIS/FESTIVE)", Run: RunFig7},
		{ID: "fig8", Title: "Figure 8 — continuous relaxation vs exact FLARE", Run: RunFig8},
		{ID: "fig9", Title: "Figure 9 — solver computation-time CDFs (32/64/128 clients)", Run: RunFig9},
		{ID: "fig10", Title: "Figure 10 — video/data coexistence CDFs", Run: RunFig10},
		{ID: "fig11", Title: "Figure 11 — alpha sweep of flow throughputs", Run: RunFig11},
		{ID: "fig12", Title: "Figure 12 — delta sweep of bitrate and stability", Run: RunFig12},
		{ID: "ext-coexist", Title: "Extension — coexistence with conventional players (Section V)", Run: RunExtCoexist},
		{ID: "ext-abr", Title: "Extension — FLARE vs BBA/MPC and the paper's client baselines", Run: RunExtABR},
		{ID: "ext-faults", Title: "Extension — graceful degradation under control-plane faults", Run: RunExtFaults},
		{ID: "ext-saturation", Title: "Extension — saturation: admission control and downgrade ladder under churn", Run: RunExtSaturation},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
