package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/metrics"
)

// tinyScale keeps experiment tests fast: 30 s scenarios, 1 run.
func tinyScale() Scale { return Scale{DurationFactor: 0.025, Runs: 1} }

func TestAllRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "ext-coexist", "ext-abr",
		"ext-faults", "ext-saturation"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig6")
	if err != nil || e.ID != "fig6" {
		t.Fatalf("ByID(fig6) = %+v, %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestScaleNormalization(t *testing.T) {
	s := Scale{}.normalized()
	if s.DurationFactor != 1 || s.Runs != 1 {
		t.Fatalf("normalized zero scale = %+v", s)
	}
	if f := Full(); f.Runs != 20 || f.DurationFactor != 1 {
		t.Fatalf("Full = %+v", f)
	}
	if q := Quick(); q.Runs < 1 {
		t.Fatalf("Quick = %+v", q)
	}
}

func TestTable1SmokeAndShape(t *testing.T) {
	rep, err := RunTable1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 {
		t.Fatalf("%d tables", len(rep.Tables))
	}
	out := rep.String()
	for _, want := range []string{"FESTIVE", "GOOGLE", "FLARE",
		"Average video rate", "Jain", "data flow"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4ProducesSeries(t *testing.T) {
	rep, err := RunFig4(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// 3 schemes x (3 video rate + 3 buffer + 1 data) = 21 series.
	if len(rep.Series) != 21 {
		t.Fatalf("%d series, want 21", len(rep.Series))
	}
	for _, s := range rep.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
	}
}

func TestFig6SmokeAndCDFShape(t *testing.T) {
	rep, err := RunFig6(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 6 { // 3 schemes x 2 metrics
		t.Fatalf("%d series, want 6", len(rep.Series))
	}
	for _, s := range rep.Series {
		last := s.Points[len(s.Points)-1]
		if last.Y != 1 {
			t.Errorf("CDF %q does not reach 1: %v", s.Name, last)
		}
	}
	if len(rep.Notes) == 0 {
		t.Error("no notes")
	}
}

func TestFig9RecordsSolveTimes(t *testing.T) {
	// Short but real runs: several BAIs per size.
	rep, err := RunFig9(Scale{DurationFactor: 0.05, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 6 { // 2 solvers x 3 sizes
		t.Fatalf("%d series, want 6", len(rep.Series))
	}
	for _, s := range rep.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
		for _, p := range s.Points {
			if p.X < 0 || p.X > 10_000 {
				t.Fatalf("implausible solve time %v ms in %q", p.X, s.Name)
			}
		}
	}
}

func TestFig12SweepShape(t *testing.T) {
	rep, err := RunFig12(Scale{DurationFactor: 0.025, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 2 {
		t.Fatalf("%d series", len(rep.Series))
	}
	for _, s := range rep.Series {
		if len(s.Points) != 13 { // delta 0..12
			t.Fatalf("series %q has %d points, want 13", s.Name, len(s.Points))
		}
	}
}

func TestReportWriteFiles(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{
		ID:    "fake",
		Title: "Fake",
		Series: []metrics.Series{
			{Name: "s", Points: []metrics.Point{{X: 1, Y: 2}}},
		},
	}
	rep.Notef("hello %d", 42)
	if err := rep.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "fake.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "hello 42") {
		t.Fatalf("txt missing note: %s", txt)
	}
	csvData, err := os.ReadFile(filepath.Join(dir, "fake.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csvData), "s,1,2") {
		t.Fatalf("csv wrong: %s", csvData)
	}
}

func TestRunManyDeterministicSeeds(t *testing.T) {
	cfg := testbedConfig(2, false, tinyScale()) // FESTIVE
	a, err := runMany(cfg, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := runMany(cfg, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].MeanClientRate() != b[i].MeanClientRate() {
			t.Fatal("runMany not deterministic")
		}
	}
}

func TestExtensionExperimentsSmoke(t *testing.T) {
	for _, id := range []string{"ext-coexist", "ext-abr", "ext-faults", "ext-saturation"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(tinyScale())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 || len(rep.Series) == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

// TestExtCoexistShape is the acceptance gate for the mixed-scheme
// coexistence story: in one cell holding 4 FLARE-coordinated and 4
// conventional FESTIVE players, the coordinated group keeps its GBR
// guarantees — zero rebuffering — and switches bitrate less than the
// uncoordinated group chasing its own throughput estimates.
func TestExtCoexistShape(t *testing.T) {
	scale := Scale{DurationFactor: 0.2, Runs: 2}
	results, err := runMany(coexistConfig(scale), scale)
	if err != nil {
		t.Fatal(err)
	}
	var flareStalls, flareChanges, festiveChanges float64
	var nFlare, nFestive int
	for _, r := range results {
		flare := r.ClientsByScheme(cellsim.SchemeFLARE)
		festive := r.ClientsByScheme(cellsim.SchemeFESTIVE)
		if len(flare) != 4 || len(festive) != 4 {
			t.Fatalf("group shapes: %d FLARE, %d FESTIVE (want 4+4)", len(flare), len(festive))
		}
		for _, c := range flare {
			if c.Segments == 0 {
				t.Errorf("FLARE client %d downloaded nothing", c.FlowID)
			}
			flareStalls += c.StallSeconds
			flareChanges += float64(c.NumChanges)
			nFlare++
		}
		for _, c := range festive {
			festiveChanges += float64(c.NumChanges)
			nFestive++
		}
	}
	if flareStalls > 0 {
		t.Errorf("coordinated FLARE players rebuffered %.1f s total; guarantees should prevent any", flareStalls)
	}
	if flareChanges/float64(nFlare) >= festiveChanges/float64(nFestive) {
		t.Errorf("FLARE switched %.1f times/client vs FESTIVE's %.1f — coordination should switch less",
			flareChanges/float64(nFlare), festiveChanges/float64(nFestive))
	}
}

// TestExtFaultsNeverBelowBaseline is the acceptance gate for the
// fault-tolerance story: under every swept control-plane loss rate the
// degraded FLARE must hold a mean QoE at or above the pure client-side
// baseline (a degraded plugin *is* a client-side player). RunExtFaults
// emits a WARNING note whenever a sweep point violates that.
func TestExtFaultsNeverBelowBaseline(t *testing.T) {
	rep, err := RunExtFaults(Scale{DurationFactor: 0.05, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("degradation floor violated: %s", n)
		}
	}
	var qoeSeries, fbSeries bool
	for _, s := range rep.Series {
		switch s.Name {
		case "flare/qoe_vs_ctrl_loss":
			qoeSeries = len(s.Points) == len(extFaultsLossRates)
		case "flare/fallback_bais_vs_ctrl_loss":
			fbSeries = len(s.Points) > 0
			// Heavier loss must produce at least as much fallback.
			if last := s.Points[len(s.Points)-1]; last.Y == 0 {
				t.Error("50% control loss produced zero fallback intervals")
			}
		}
	}
	if !qoeSeries || !fbSeries {
		t.Fatalf("sweep series missing or short: %+v", rep.Series)
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry smoke is not for -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(tinyScale())
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Tables) == 0 && len(rep.Series) == 0 {
				t.Fatal("no output")
			}
			if rep.ID != e.ID {
				t.Fatalf("report ID %q != experiment ID %q", rep.ID, e.ID)
			}
			if err := rep.WriteFiles(t.TempDir()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestExtSaturationGate is the acceptance gate for the saturation story:
// pushed to and past twice its floor-carrying capacity by churn, FLARE
// with admission control and the downgrade ladder must (a) keep every
// admitted flow free of post-admission rebuffering and (b) deliver
// strictly higher QoE among its admitted flows than naive FLARE does
// among its universally admitted ones. RunExtSaturation emits a WARNING
// note whenever a sweep point at >=2x violates either clause.
func TestExtSaturationGate(t *testing.T) {
	rep, err := RunExtSaturation(Scale{DurationFactor: 0.15, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("saturation gate violated: %s", n)
		}
	}
	var share metrics.Series
	for _, s := range rep.Series {
		if s.Name == "flare-robust/admitted_share_vs_load" {
			share = s
		}
	}
	if len(share.Points) != len(extSatLoads) {
		t.Fatalf("admitted-share series missing or short: %+v", rep.Series)
	}
	// Past capacity the controller must actually refuse someone —
	// otherwise the zero-stall clause is vacuously testing an idle gate.
	if last := share.Points[len(share.Points)-1]; last.Y >= 1 {
		t.Errorf("no session was refused at %gx overload (admitted share %v)", last.X, last.Y)
	}
}
