package experiments

import (
	"fmt"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/metrics"
)

// simSchemes are the systems compared in the ns-3 scenarios.
var simSchemes = []cellsim.Scheme{
	cellsim.SchemeFLARE, cellsim.SchemeAVIS, cellsim.SchemeFESTIVE,
}

const cdfPoints = 80

// runClientCDFs produces the Figure 6 / Figure 7 CDFs: per-client
// average bitrate and bitrate-change counts pooled across runs.
func runClientCDFs(id, title string, mobile bool, scale Scale) (*Report, error) {
	rep := &Report{ID: id, Title: title}
	means := map[cellsim.Scheme]float64{}
	changeMeans := map[cellsim.Scheme]float64{}
	for _, scheme := range simSchemes {
		results, err := runMany(simConfig(scheme, mobile, scale), scale)
		if err != nil {
			return nil, err
		}
		rates := pooled(results, (*cellsim.Result).AvgRates)
		changes := pooled(results, (*cellsim.Result).Changes)
		var jains []float64
		for _, r := range results {
			jains = append(jains, r.JainOfTputs())
		}
		rep.Series = append(rep.Series,
			metrics.SeriesFromCDF(fmt.Sprintf("%s/avg_bitrate_bps", scheme), metrics.NewCDF(rates), cdfPoints),
			metrics.SeriesFromCDF(fmt.Sprintf("%s/bitrate_changes", scheme), metrics.NewCDF(changes), cdfPoints),
		)
		means[scheme] = metrics.Mean(rates)
		changeMeans[scheme] = metrics.Mean(changes)
		rep.Notef("%s: mean bitrate %.0f Kbps over %d clients, mean changes %.1f, Jain %.3f",
			scheme, means[scheme]/1000, len(rates), changeMeans[scheme], metrics.Mean(jains))
	}
	flare, avis, fest := means[cellsim.SchemeFLARE], means[cellsim.SchemeAVIS], means[cellsim.SchemeFESTIVE]
	if avis > 0 && fest > 0 {
		rep.Notef("FLARE bitrate vs AVIS %+.0f%%, vs FESTIVE %+.0f%% (paper %s: +%s)",
			100*(flare/avis-1), 100*(flare/fest-1), rep.ID,
			map[bool]string{false: "24%/39%", true: "53%/47%"}[mobile])
	}
	fc, ac, fec := changeMeans[cellsim.SchemeFLARE], changeMeans[cellsim.SchemeAVIS], changeMeans[cellsim.SchemeFESTIVE]
	if ac > 0 && fec > 0 {
		rep.Notef("FLARE changes vs AVIS %+.0f%%, vs FESTIVE %+.0f%% (paper %s: -%s)",
			100*(fc/ac-1), 100*(fc/fec-1), rep.ID,
			map[bool]string{false: "26%/66%", true: "85%/95%"}[mobile])
	}
	return rep, nil
}

// RunFig6 reproduces Figure 6 (static CDFs).
func RunFig6(scale Scale) (*Report, error) {
	return runClientCDFs("fig6", "Figure 6 — static scenario CDFs", false, scale)
}

// RunFig7 reproduces Figure 7 (mobile CDFs).
func RunFig7(scale Scale) (*Report, error) {
	return runClientCDFs("fig7", "Figure 7 — mobile scenario CDFs", true, scale)
}

// RunFig8 reproduces Figure 8: FLARE with the continuous-relaxation
// solver against exact FLARE, on the dense 100..1200 Kbps ladder, for
// both the static and mobile scenarios.
func RunFig8(scale Scale) (*Report, error) {
	rep := &Report{ID: "fig8", Title: "Figure 8 — continuous bitrate optimisation"}
	for _, mobile := range []bool{false, true} {
		label := map[bool]string{false: "static", true: "mobile"}[mobile]
		var exactMean, relaxMean float64
		var exactChanges, relaxChanges float64
		for _, relaxed := range []bool{false, true} {
			cfg := simConfig(cellsim.SchemeFLARE, mobile, scale)
			cfg.Ladder = has.FineLadder()
			cfg.Flare.UseRelaxation = relaxed
			results, err := runMany(cfg, scale)
			if err != nil {
				return nil, err
			}
			rates := pooled(results, (*cellsim.Result).AvgRates)
			changes := pooled(results, (*cellsim.Result).Changes)
			arm := map[bool]string{false: "exact", true: "relaxed"}[relaxed]
			rep.Series = append(rep.Series,
				metrics.SeriesFromCDF(fmt.Sprintf("%s/%s/avg_bitrate_bps", label, arm), metrics.NewCDF(rates), cdfPoints),
				metrics.SeriesFromCDF(fmt.Sprintf("%s/%s/bitrate_changes", label, arm), metrics.NewCDF(changes), cdfPoints),
			)
			if relaxed {
				relaxMean, relaxChanges = metrics.Mean(rates), metrics.Mean(changes)
			} else {
				exactMean, exactChanges = metrics.Mean(rates), metrics.Mean(changes)
			}
		}
		loss := 0.0
		if exactMean > 0 {
			loss = 100 * (1 - relaxMean/exactMean)
		}
		rep.Notef("%s: relaxation bitrate loss %.1f%% (paper: <=15%%); changes exact %.1f vs relaxed %.1f",
			label, loss, exactChanges, relaxChanges)
	}
	return rep, nil
}

// RunFig9 reproduces Figure 9: CDFs of the per-BAI optimiser wall time
// with 32, 64, and 128 video clients, for both solvers.
func RunFig9(scale Scale) (*Report, error) {
	rep := &Report{ID: "fig9", Title: "Figure 9 — bitrate-selection computation time"}
	sizes := []int{32, 64, 128}
	for _, relaxed := range []bool{true, false} {
		arm := map[bool]string{false: "exact", true: "relaxed"}[relaxed]
		for _, n := range sizes {
			cfg := simConfig(cellsim.SchemeFLARE, false, scale)
			cfg.NumVideo = n
			cfg.Ladder = has.FineLadder()
			cfg.Flare.UseRelaxation = relaxed
			// One run suffices: every BAI contributes a sample.
			one := scale.normalized()
			one.Runs = 1
			results, err := runMany(cfg, one)
			if err != nil {
				return nil, err
			}
			timesMs := make([]float64, 0, len(results[0].SolveTimesSec))
			for _, s := range results[0].SolveTimesSec {
				timesMs = append(timesMs, s*1000)
			}
			cdf := metrics.NewCDF(timesMs)
			rep.Series = append(rep.Series,
				metrics.SeriesFromCDF(fmt.Sprintf("%s/%d_clients/solve_ms", arm, n), cdf, cdfPoints))
			rep.Notef("%s solver, %d clients: median %.3f ms, p99 %.3f ms, max %.3f ms over %d BAIs (segment duration is 10000 ms)",
				arm, n, cdf.Quantile(0.5), cdf.Quantile(0.99), cdf.Max(), cdf.Len())
		}
	}
	return rep, nil
}

// RunFig10 reproduces Figure 10: 8 video + 8 data clients under FLARE;
// CDFs of per-flow throughput by class and of video bitrate changes.
func RunFig10(scale Scale) (*Report, error) {
	rep := &Report{ID: "fig10", Title: "Figure 10 — video/data coexistence under FLARE"}
	cfg := simConfig(cellsim.SchemeFLARE, true, scale)
	cfg.NumData = 8
	cfg.Ladder = has.FineLadder()
	results, err := runMany(cfg, scale)
	if err != nil {
		return nil, err
	}
	videoTputs := pooled(results, (*cellsim.Result).AvgTputs)
	dataTputs := pooled(results, (*cellsim.Result).DataTputs)
	changes := pooled(results, (*cellsim.Result).Changes)
	rep.Series = append(rep.Series,
		metrics.SeriesFromCDF("video/tput_bps", metrics.NewCDF(videoTputs), cdfPoints),
		metrics.SeriesFromCDF("data/tput_bps", metrics.NewCDF(dataTputs), cdfPoints),
		metrics.SeriesFromCDF("video/bitrate_changes", metrics.NewCDF(changes), cdfPoints),
	)
	rep.Notef("video mean %.0f Kbps, data mean %.0f Kbps, video changes mean %.1f",
		metrics.Mean(videoTputs)/1000, metrics.Mean(dataTputs)/1000, metrics.Mean(changes))
	return rep, nil
}

// RunFig11 reproduces Figure 11: the alpha sweep trading data against
// video throughput.
func RunFig11(scale Scale) (*Report, error) {
	rep := &Report{ID: "fig11", Title: "Figure 11 — flow throughputs vs alpha"}
	alphas := []float64{0.25, 0.5, 1, 2, 4}
	var videoMean, videoStd, dataMean, dataStd metrics.Series
	videoMean.Name, videoStd.Name = "video/mean_bps", "video/stdev_bps"
	dataMean.Name, dataStd.Name = "data/mean_bps", "data/stdev_bps"
	for _, alpha := range alphas {
		cfg := simConfig(cellsim.SchemeFLARE, true, scale)
		cfg.NumData = 8
		cfg.Ladder = has.FineLadder()
		cfg.Flare.Alpha = alpha
		results, err := runMany(cfg, scale)
		if err != nil {
			return nil, err
		}
		v := pooled(results, (*cellsim.Result).AvgTputs)
		d := pooled(results, (*cellsim.Result).DataTputs)
		videoMean.Points = append(videoMean.Points, metrics.Point{X: alpha, Y: metrics.Mean(v)})
		videoStd.Points = append(videoStd.Points, metrics.Point{X: alpha, Y: metrics.Stdev(v)})
		dataMean.Points = append(dataMean.Points, metrics.Point{X: alpha, Y: metrics.Mean(d)})
		dataStd.Points = append(dataStd.Points, metrics.Point{X: alpha, Y: metrics.Stdev(d)})
		rep.Notef("alpha=%.2f: video %.0f Kbps, data %.0f Kbps", alpha,
			metrics.Mean(v)/1000, metrics.Mean(d)/1000)
	}
	rep.Series = append(rep.Series, videoMean, videoStd, dataMean, dataStd)
	return rep, nil
}

// RunFig12 reproduces Figure 12: the delta sweep trading average bitrate
// against stability.
func RunFig12(scale Scale) (*Report, error) {
	rep := &Report{ID: "fig12", Title: "Figure 12 — bitrate and stability vs delta"}
	var rateSeries, changeSeries metrics.Series
	rateSeries.Name, changeSeries.Name = "avg_bitrate_bps", "bitrate_changes"
	// delta=0 is the extra ablation arm: Algorithm 1's streak gate off.
	for delta := 0; delta <= 12; delta++ {
		cfg := simConfig(cellsim.SchemeFLARE, true, scale)
		cfg.Flare.Delta = delta
		results, err := runMany(cfg, scale)
		if err != nil {
			return nil, err
		}
		rates := pooled(results, (*cellsim.Result).AvgRates)
		changes := pooled(results, (*cellsim.Result).Changes)
		rateSeries.Points = append(rateSeries.Points, metrics.Point{X: float64(delta), Y: metrics.Mean(rates)})
		changeSeries.Points = append(changeSeries.Points, metrics.Point{X: float64(delta), Y: metrics.Mean(changes)})
		rep.Notef("delta=%d: avg bitrate %.0f Kbps, %.1f changes/client",
			delta, metrics.Mean(rates)/1000, metrics.Mean(changes))
	}
	rep.Series = append(rep.Series, rateSeries, changeSeries)
	return rep, nil
}
