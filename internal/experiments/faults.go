package experiments

import (
	"fmt"
	"time"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/metrics"
)

// faultSeed seeds the control-plane injectors independently of the
// channel/run seeds, so the fault schedule is reproducible across the
// sweep.
const faultSeed uint64 = 0xfa_17_5eed

// extFaultsLossRates is the control-plane loss sweep: from the paper's
// implicit fault-free operating point up to a control plane losing half
// of all exchanges.
var extFaultsLossRates = []float64{0, 0.1, 0.3, 0.5}

// RunExtFaults measures FLARE's graceful degradation under control-plane
// faults — the scenario the paper's OneAPI overlay deployment implies
// but never evaluates. Statistics reports and assignment polls are
// dropped at increasing rates (plus one total-blackout scenario); the
// FLARE plugins fall back to a local throughput ABR when coordination is
// lost. The claim under test: FLARE's QoE degrades toward — and never
// below — a pure client-side baseline (FESTIVE), because a degraded
// FLARE plugin *is* a conventional client-side player.
func RunExtFaults(scale Scale) (*Report, error) {
	rep := &Report{
		ID:    "ext-faults",
		Title: "Extension — QoE degradation under control-plane faults",
	}

	// The pure client-side baseline has no control plane to lose:
	// one fault-free FESTIVE run set serves every sweep point.
	baseCfg := simConfig(cellsim.SchemeFESTIVE, false, scale)
	baseResults, err := runMany(baseCfg, scale)
	if err != nil {
		return nil, err
	}
	baselineQoE := meanQoE(baseResults)
	baselineRate := metrics.Mean(pooled(baseResults, (*cellsim.Result).AvgRates))

	tbl := metrics.NewTable("FLARE under control-plane loss (FESTIVE baseline: fault-free)",
		"QoE", "rate Kbps", "stall s", "fallback BAIs", "transitions", "lost rpt/poll")
	var qoeCurve, fallbackCurve []metrics.Point

	for _, loss := range extFaultsLossRates {
		cfg := simConfig(cellsim.SchemeFLARE, false, scale)
		cfg.ControlFaults = faults.Config{Seed: faultSeed, DropRate: loss}
		results, err := runMany(cfg, scale)
		if err != nil {
			return nil, err
		}
		row := summarizeFaultRuns(results)
		tbl.AddRow(fmt.Sprintf("FLARE %.0f%% loss", loss*100), row.cells()...)
		qoeCurve = append(qoeCurve, metrics.Point{X: loss, Y: row.qoe})
		fallbackCurve = append(fallbackCurve, metrics.Point{X: loss, Y: row.fallbackBAIs})
		rep.Notef("loss %.0f%%: FLARE QoE %.0f (baseline %.0f), %.0f Kbps, %.1f fallback BAIs/client",
			loss*100, row.qoe, baselineQoE, row.rateKbps, row.fallbackBAIs)
		if row.qoe < baselineQoE {
			rep.Notef("WARNING: FLARE at %.0f%% loss fell below the client-side baseline (%.0f < %.0f)",
				loss*100, row.qoe, baselineQoE)
		}
	}

	// Total blackout through the middle third of the run: every plugin
	// must degrade and recover.
	blk := simConfig(cellsim.SchemeFLARE, false, scale)
	third := blk.Duration / 3
	blk.ControlFaults = faults.Config{
		Seed:      faultSeed,
		Blackouts: []faults.Window{{From: third, To: 2 * third}},
	}
	blkResults, err := runMany(blk, scale)
	if err != nil {
		return nil, err
	}
	blkRow := summarizeFaultRuns(blkResults)
	tbl.AddRow(fmt.Sprintf("FLARE blackout %ds", int(third.Seconds())), blkRow.cells()...)
	rep.Notef("blackout %v–%v: QoE %.0f, %d total mode transitions across runs",
		third.Round(time.Second), (2 * third).Round(time.Second), blkRow.qoe, blkRow.totalTransitions)

	tbl.AddRow("FESTIVE (baseline)",
		fmt.Sprintf("%.0f", baselineQoE),
		fmt.Sprintf("%.0f", baselineRate/1000),
		fmt.Sprintf("%.1f", meanStalls(baseResults)),
		"-", "-", "-")
	rep.Tables = append(rep.Tables, tbl)

	rep.Series = append(rep.Series,
		metrics.Series{Name: "flare/qoe_vs_ctrl_loss", Points: qoeCurve},
		metrics.Series{Name: "flare/fallback_bais_vs_ctrl_loss", Points: fallbackCurve},
		metrics.Series{Name: "festive/qoe_baseline", Points: []metrics.Point{
			{X: extFaultsLossRates[0], Y: baselineQoE},
			{X: extFaultsLossRates[len(extFaultsLossRates)-1], Y: baselineQoE},
		}},
	)
	return rep, nil
}

// faultRow aggregates one sweep point.
type faultRow struct {
	qoe              float64
	rateKbps         float64
	stallSec         float64
	fallbackBAIs     float64 // mean per client
	meanTransitions  float64 // mean per client
	totalTransitions int
	reportsLost      int
	pollsLost        int
}

func (r faultRow) cells() []string {
	return []string{
		fmt.Sprintf("%.0f", r.qoe),
		fmt.Sprintf("%.0f", r.rateKbps),
		fmt.Sprintf("%.1f", r.stallSec),
		fmt.Sprintf("%.1f", r.fallbackBAIs),
		fmt.Sprintf("%.1f", r.meanTransitions),
		fmt.Sprintf("%d/%d", r.reportsLost, r.pollsLost),
	}
}

func summarizeFaultRuns(results []*cellsim.Result) faultRow {
	var row faultRow
	var qoes, rates, stalls, fbBAIs, trans []float64
	for _, r := range results {
		for _, c := range r.Clients {
			qoes = append(qoes, c.QoEScore)
			rates = append(rates, c.AvgRateBps)
			stalls = append(stalls, c.StallSeconds)
			fbBAIs = append(fbBAIs, float64(c.FallbackIntervals))
			trans = append(trans, float64(c.FallbackTransitions))
			row.totalTransitions += c.FallbackTransitions
		}
		row.reportsLost += r.ControlPlane.ReportsLost
		row.pollsLost += r.ControlPlane.PollsLost
	}
	row.qoe = metrics.Mean(qoes)
	row.rateKbps = metrics.Mean(rates) / 1000
	row.stallSec = metrics.Mean(stalls)
	row.fallbackBAIs = metrics.Mean(fbBAIs)
	row.meanTransitions = metrics.Mean(trans)
	return row
}

func meanQoE(results []*cellsim.Result) float64 {
	var scores []float64
	for _, r := range results {
		for _, c := range r.Clients {
			scores = append(scores, c.QoEScore)
		}
	}
	return metrics.Mean(scores)
}

func meanStalls(results []*cellsim.Result) float64 {
	var stalls []float64
	for _, r := range results {
		for _, c := range r.Clients {
			stalls = append(stalls, c.StallSeconds)
		}
	}
	return metrics.Mean(stalls)
}
