package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
)

// baseSeed keeps all experiments deterministic while giving each run in
// a sweep an independent stream.
const baseSeed uint64 = 0x5eed_f1a2e

// testbedConfig reproduces the femtocell scenarios of Section IV-A:
// three video clients plus one iperf data flow, the 8-level testbed
// ladder, 2 s segments, and iTbs 2 (static) or a 1->12->1 cycle over
// four minutes (dynamic).
func testbedConfig(scheme cellsim.Scheme, dynamic bool, scale Scale) cellsim.Config {
	cfg := cellsim.DefaultConfig(scheme)
	cfg.Duration = scaled(600*time.Second, scale)
	cfg.NumVideo = 3
	cfg.NumData = 1
	cfg.Ladder = has.TestbedLadder()
	cfg.SegmentDuration = 2 * time.Second
	// The testbed's video/data balance point: our idealised TBS mapping
	// lacks the femtocell's PHY/MAC overheads, which made video RBs
	// effectively costlier in the paper's testbed; alpha=4 (the top of
	// the paper's Figure 11 sweep) restores the Table I/II operating
	// point where the data flow lands between GOOGLE's and FESTIVE's.
	cfg.Flare.Alpha = 4
	if dynamic {
		cfg.Duration = scaled(600*time.Second, scale)
		cfg.Channel = cellsim.ChannelSpec{
			Kind: cellsim.ChannelCyclic, CyclicMin: 1, CyclicMax: 12,
			CyclicPeriod: 4 * time.Minute,
		}
		if scale.DurationFactor < 1 {
			// Keep several MCS cycles within the shortened run.
			cfg.Channel.CyclicPeriod = time.Duration(float64(4*time.Minute) * scale.DurationFactor)
		}
	} else {
		cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelStatic, StaticITbs: 2}
	}
	// GOOGLE's request threshold: 15 s in the static scenario, raised
	// to 40 s in the dynamic one (the paper's anti-rebuffering tweak).
	if scheme == cellsim.SchemeGOOGLE {
		if dynamic {
			cfg.Player.MaxBufferSeconds = 40
		} else {
			cfg.Player.MaxBufferSeconds = 15
		}
	}
	return cfg
}

// simConfig reproduces the ns-3 scenarios of Section IV-B: 8 video
// clients at random positions in a 2000 m cell, Table III ladder, 10 s
// segments. "Static" places nearly stationary UEs (distinct positions,
// so per-client link qualities differ as in ns-3); "mobile" uses the
// vehicular random-waypoint speeds.
func simConfig(scheme cellsim.Scheme, mobile bool, scale Scale) cellsim.Config {
	cfg := cellsim.DefaultConfig(scheme)
	cfg.Duration = scaled(1200*time.Second, scale)
	cfg.NumVideo = 8
	cfg.NumData = 0
	mob := lte.DefaultMobilityConfig(cfg.NumVideo)
	if !mobile {
		// Stationary UEs: distinct but fixed positions and frozen
		// shadowing. Fast fading stays on — Table III drives fading
		// from traces even for static UEs, and that variability is
		// what stresses the client-side estimators.
		mob.MinSpeed, mob.MaxSpeed = 0.01, 0.02
		mob.FadingStdevDB = 4
		mob.FadingTauSeconds = 3
	}
	cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelMobility, Mobility: mob}
	return cfg
}

func scaled(d time.Duration, scale Scale) time.Duration {
	s := scale.normalized()
	out := time.Duration(float64(d) * s.DurationFactor)
	if out < 30*time.Second {
		out = 30 * time.Second
	}
	return out
}

// runMany executes cfg Runs times with distinct seeds (in parallel) and
// returns the results in run order. The first failure cancels every run
// still in flight; a panicking run is converted to that run's error
// instead of crashing the whole sweep.
func runMany(cfg cellsim.Config, scale Scale) ([]*cellsim.Result, error) {
	s := scale.normalized()
	results := make([]*cellsim.Result, s.Runs)
	errs := make([]error, s.Runs)
	workers := s.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s.Runs {
		workers = s.Runs
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for run := 0; run < s.Runs; run++ {
		run := run
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[run] = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
					cancel()
				}
			}()
			if ctx.Err() != nil {
				errs[run] = ctx.Err()
				return
			}
			c := cfg
			c.Seed = baseSeed + uint64(run)*0x9e37
			results[run], errs[run] = cellsim.RunContext(ctx, c)
			if errs[run] != nil {
				cancel()
			}
		}()
	}
	wg.Wait()
	// Report the first real failure; cancellations are just its fallout.
	for run, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, fmt.Errorf("experiments: run %d: %w", run, err)
		}
	}
	for run, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: run %d: %w", run, err)
		}
	}
	return results, nil
}

// pooled aggregates a per-client metric across runs (the paper's "over
// 160 clients" pooling: 20 runs x 8 clients).
func pooled(results []*cellsim.Result, metric func(*cellsim.Result) []float64) []float64 {
	var out []float64
	for _, r := range results {
		out = append(out, metric(r)...)
	}
	return out
}
