package experiments

import (
	"fmt"
	"time"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/metrics"
)

// extSatLoads sweeps the offered load as a multiple of the cell's
// floor-carrying capacity (the number of sessions the RB budget can hold
// at the ladder's lowest encoding). Past 1.0 the MCKP is structurally
// infeasible: no assignment keeps every flow at its floor.
var extSatLoads = []float64{0.5, 1.0, 2.0, 3.0}

const (
	// extSatITbs pins the saturation cell at the paper's Table I
	// operating point (~4.4 Mbit/s at 50 RBs) so the floor capacity is
	// a small, quickly exceeded number of sessions.
	extSatITbs = 2
	// extSatMeanDuration is the mean churn session length. Short
	// relative to the run so the Poisson/Pareto generator reaches and
	// holds its steady-state concurrency within every scale.
	extSatMeanDuration = 40 * time.Second
)

// saturationConfig builds one sweep point: a small static cell fed by
// churn at `load` times its floor-carrying capacity. The robust arm
// turns on the admission controller and the downgrade ladder; the naive
// arm is plain FLARE admitting everyone.
func saturationConfig(scale Scale, load float64, robust bool) cellsim.Config {
	cfg := cellsim.DefaultConfig(cellsim.SchemeFLARE)
	cfg.Duration = scaled(480*time.Second, scale)
	cfg.NumVideo = 0 // the churn generator populates the cell
	cfg.NumData = 0
	cfg.Ladder = has.TestbedLadder()
	cfg.SegmentDuration = 2 * time.Second
	cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelStatic, StaticITbs: extSatITbs}

	// Little's law: steady-state concurrency = duration/interarrival,
	// so the gap that offers `load` x the floor capacity is
	// mean-duration / (load x capacity-in-sessions).
	floorSessions := lte.CellRateBps(extSatITbs) * cfg.Flare.CapacityMargin / cfg.Ladder.Min()
	gap := extSatMeanDuration.Seconds() / (load * floorSessions)
	cfg.Churn = cellsim.ChurnConfig{
		Enabled:          true,
		MeanInterarrival: time.Duration(gap * float64(time.Second)),
		MeanDuration:     extSatMeanDuration,
		MaxSessions:      2048,
	}
	if robust {
		cfg.Flare.AdmissionControl = true
		cfg.Flare.DowngradeLadder = true
	}
	return cfg
}

// RunExtSaturation measures saturation-grade robustness: a churn-driven
// cell is pushed past its floor-carrying capacity and plain FLARE
// (admit everyone, split the shortfall) is compared against FLARE with
// admission control plus the downgrade ladder (refuse what cannot be
// floored, shed ceilings under pressure). The claim under test: at >=2x
// overload the robust arm keeps its admitted flows stall-free and
// delivers strictly higher QoE among them than the naive arm does among
// its (universally admitted) flows.
func RunExtSaturation(scale Scale) (*Report, error) {
	rep := &Report{
		ID:    "ext-saturation",
		Title: "Extension — saturation: admission control and downgrade ladder under churn",
	}

	tbl := metrics.NewTable("FLARE under offered-load sweep (x floor capacity)",
		"admitted/total", "QoE adm", "stall s adm", "stalled flows", "rejects")
	var naiveQoE, robustQoE, admittedShare, naiveStall, robustStall []metrics.Point

	for _, load := range extSatLoads {
		naive, err := summarizeSatRuns(saturationConfig(scale, load, false), scale)
		if err != nil {
			return nil, err
		}
		robust, err := summarizeSatRuns(saturationConfig(scale, load, true), scale)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("naive %.1fx", load), naive.cells()...)
		tbl.AddRow(fmt.Sprintf("robust %.1fx", load), robust.cells()...)

		naiveQoE = append(naiveQoE, metrics.Point{X: load, Y: naive.qoe})
		robustQoE = append(robustQoE, metrics.Point{X: load, Y: robust.qoe})
		naiveStall = append(naiveStall, metrics.Point{X: load, Y: naive.stallSec})
		robustStall = append(robustStall, metrics.Point{X: load, Y: robust.stallSec})
		admittedShare = append(admittedShare, metrics.Point{X: load, Y: robust.admittedFrac()})

		rep.Notef("load %.1fx: naive QoE %.0f (%.1f stall s/flow), robust QoE %.0f (%.1f stall s/flow, %d/%d admitted)",
			load, naive.qoe, naive.stallSec, robust.qoe, robust.stallSec, robust.admitted, robust.flows)
		if load >= 2 {
			// The acceptance gate for the saturation story.
			if robust.stallSeconds > 0 {
				rep.Notef("WARNING: robust FLARE at %.1fx stalled admitted flows for %.1f s total — guarantees should prevent any",
					load, robust.stallSeconds)
			}
			if robust.qoe <= naive.qoe {
				rep.Notef("WARNING: robust FLARE at %.1fx did not beat naive on admitted-flow QoE (%.0f <= %.0f)",
					load, robust.qoe, naive.qoe)
			}
		}
	}

	rep.Tables = append(rep.Tables, tbl)
	rep.Series = append(rep.Series,
		metrics.Series{Name: "flare-naive/qoe_vs_load", Points: naiveQoE},
		metrics.Series{Name: "flare-robust/qoe_vs_load", Points: robustQoE},
		metrics.Series{Name: "flare-naive/stall_vs_load", Points: naiveStall},
		metrics.Series{Name: "flare-robust/stall_vs_load", Points: robustStall},
		metrics.Series{Name: "flare-robust/admitted_share_vs_load", Points: admittedShare},
	)
	return rep, nil
}

// satRow aggregates one sweep point over the admitted population only —
// a refused flow plays out on its local ABR and its (poor) experience
// is the admission policy working, not failing.
type satRow struct {
	flows        int     // sessions generated by churn, across runs
	admitted     int     // sessions the control plane admitted
	qoe          float64 // mean QoE among admitted flows
	stallSec     float64 // mean post-admission stall seconds per admitted flow
	stallSeconds float64 // total post-admission stall seconds, admitted flows
	stallCount   int     // admitted flows with any post-admission stall
	rejects      int     // open attempts refused (retries included)
}

func (r satRow) admittedFrac() float64 {
	if r.flows == 0 {
		return 0
	}
	return float64(r.admitted) / float64(r.flows)
}

func (r satRow) cells() []string {
	return []string{
		fmt.Sprintf("%d/%d", r.admitted, r.flows),
		fmt.Sprintf("%.0f", r.qoe),
		fmt.Sprintf("%.1f", r.stallSec),
		fmt.Sprintf("%d", r.stallCount),
		fmt.Sprintf("%d", r.rejects),
	}
}

func summarizeSatRuns(cfg cellsim.Config, scale Scale) (satRow, error) {
	results, err := runMany(cfg, scale)
	if err != nil {
		return satRow{}, err
	}
	var row satRow
	var qoes, stalls []float64
	for _, r := range results {
		row.rejects += r.ControlPlane.AdmissionRejects
		for _, c := range r.Clients {
			row.flows++
			if !c.Admitted {
				continue
			}
			row.admitted++
			qoes = append(qoes, c.QoEScore)
			// Post-admission stalls only: rebuffering a flow accrued
			// while waiting on its local ABR (and the settling window
			// right after a mid-stream admission) is starvation the
			// admission policy chose, not a broken guarantee.
			post := c.StallSeconds - c.StallSecondsPreAdmit
			if post < 0 {
				post = 0
			}
			stalls = append(stalls, post)
			row.stallSeconds += post
			if post > 0 {
				row.stallCount++
			}
		}
	}
	row.qoe = metrics.Mean(qoes)
	row.stallSec = metrics.Mean(stalls)
	return row, nil
}
