package experiments

import (
	"fmt"

	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/metrics"
)

// testbedSchemes are the players compared on the femtocell (Section IV-A).
var testbedSchemes = []cellsim.Scheme{
	cellsim.SchemeFESTIVE, cellsim.SchemeGOOGLE, cellsim.SchemeFLARE,
}

// runTestbedTable produces the Table I / Table II summary.
func runTestbedTable(id, title string, dynamic bool, scale Scale) (*Report, error) {
	rep := &Report{ID: id, Title: title}
	tbl := metrics.NewTable(title, "FESTIVE", "GOOGLE", "FLARE")

	var avgRate, stall, changes, jain, dataTput []float64
	for _, scheme := range testbedSchemes {
		results, err := runMany(testbedConfig(scheme, dynamic, scale), scale)
		if err != nil {
			return nil, err
		}
		rates := pooled(results, (*cellsim.Result).AvgRates)
		chs := pooled(results, (*cellsim.Result).Changes)
		var stalls, jains, datas []float64
		for _, r := range results {
			for _, c := range r.Clients {
				stalls = append(stalls, c.StallSeconds)
			}
			jains = append(jains, r.JainOfRates())
			datas = append(datas, r.DataTputs()...)
		}
		avgRate = append(avgRate, metrics.Mean(rates)/1000)
		stall = append(stall, metrics.Mean(stalls))
		changes = append(changes, metrics.Mean(chs))
		jain = append(jain, metrics.Mean(jains))
		dataTput = append(dataTput, metrics.Mean(datas)/1000)
	}

	tbl.AddFloatRow("Average video rate (Kbps)", "%.0f", avgRate...)
	tbl.AddFloatRow("Average time that the buffer is underflowed (sec)", "%.1f", stall...)
	tbl.AddFloatRow("Average number of bitrate changes", "%.1f", changes...)
	tbl.AddFloatRow("Jain's fairness index of average video rates", "%.3f", jain...)
	tbl.AddFloatRow("Average throughput of data flow (Kbps)", "%.0f", dataTput...)
	rep.Tables = append(rep.Tables, tbl)

	rep.Notef("FLARE changes=%.1f vs FESTIVE=%.1f, GOOGLE=%.1f (paper: FLARE fewest)",
		changes[2], changes[0], changes[1])
	rep.Notef("rebuffering: FESTIVE=%.1fs GOOGLE=%.1fs FLARE=%.1fs (paper: only GOOGLE rebuffers)",
		stall[0], stall[1], stall[2])
	rep.Notef("data flow: FESTIVE=%.0fK GOOGLE=%.0fK FLARE=%.0fK (paper: FESTIVE > FLARE > GOOGLE)",
		dataTput[0], dataTput[1], dataTput[2])
	return rep, nil
}

// RunTable1 reproduces Table I (static testbed).
func RunTable1(scale Scale) (*Report, error) {
	return runTestbedTable("table1", "Table I — static scenario summary", false, scale)
}

// RunTable2 reproduces Table II (dynamic testbed).
func RunTable2(scale Scale) (*Report, error) {
	return runTestbedTable("table2", "Table II — dynamic scenario summary", true, scale)
}

// runTimeseriesFigure produces the Figure 4 / Figure 5 per-second views.
func runTimeseriesFigure(id, title string, dynamic bool, scale Scale) (*Report, error) {
	rep := &Report{ID: id, Title: title}
	for _, scheme := range testbedSchemes {
		cfg := testbedConfig(scheme, dynamic, scale)
		cfg.CollectSeries = true
		res, err := cellsim.Run(cfg)
		if err != nil {
			return nil, err
		}
		const maxPts = 600
		for i, ts := range res.VideoRateSeries {
			rep.Series = append(rep.Series, metrics.SeriesFromTimeSeries(
				fmt.Sprintf("%s/video%d/rate_bps", scheme, i), ts, maxPts))
		}
		for i, ts := range res.BufferSeries {
			rep.Series = append(rep.Series, metrics.SeriesFromTimeSeries(
				fmt.Sprintf("%s/video%d/buffer_s", scheme, i), ts, maxPts))
		}
		for i, ts := range res.DataTputSeries {
			rep.Series = append(rep.Series, metrics.SeriesFromTimeSeries(
				fmt.Sprintf("%s/data%d/tput_bps", scheme, i), ts, maxPts))
		}
		rep.Notef("%s: mean rate %.0f Kbps, %.1f changes/client, %.1f s stalled",
			scheme, res.MeanClientRate()/1000, res.MeanChanges(), res.TotalStallSeconds())
	}
	return rep, nil
}

// RunFig4 reproduces Figure 4 (static time series).
func RunFig4(scale Scale) (*Report, error) {
	return runTimeseriesFigure("fig4", "Figure 4 — static scenario time series", false, scale)
}

// RunFig5 reproduces Figure 5 (dynamic time series).
func RunFig5(scale Scale) (*Report, error) {
	return runTimeseriesFigure("fig5", "Figure 5 — dynamic scenario time series", true, scale)
}
