// Command flarebench regenerates every table and figure in the paper's
// evaluation (Tables I-II, Figures 4-12).
//
// Usage:
//
//	flarebench [-scale quick|full] [-factor F] [-runs N] [-only id,...] [-out dir]
//	           [-cpuprofile cpu.prof] [-memprofile mem.prof]
//	flarebench -json BENCH_engine.json
//	flarebench -check-against BENCH_engine.json
//	flarebench -trace engine.jsonl
//
// Text tables are printed to stdout; per-figure plot data (CSV) and the
// text views are written under -out (default ./results).
//
// -json measures the canonical engine benchmark (the BenchmarkEngineTick
// workload from internal/benchmarks) and writes its simsec/sec, ns/op
// and allocs/op to the given file, preserving any committed baseline
// block. -check-against measures the same workload and exits nonzero if
// simsec/sec regressed more than 20% against the file's committed
// current numbers — the CI perf gate.
//
// -trace runs the same canonical engine workload once with telemetry
// recording enabled, writes its JSONL event stream (readable with
// flaretrace) to the given file, and dumps the run's counters and
// solver-latency histogram in Prometheus text to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/benchmarks"
	"github.com/flare-sim/flare/internal/buildinfo"
	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/experiments"
	"github.com/flare-sim/flare/internal/metrics"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/profiling"
)

func main() {
	os.Exit(run())
}

// benchPoint is one measurement of the engine benchmark.
type benchPoint struct {
	Label        string  `json:"label,omitempty"`
	SimsecPerSec float64 `json:"simsec_per_sec"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
}

// benchFile is the BENCH_engine.json schema: the committed pre-change
// baseline (never overwritten by -json) and the current measurement.
type benchFile struct {
	Benchmark string      `json:"benchmark"`
	Metric    string      `json:"metric"`
	Baseline  *benchPoint `json:"baseline,omitempty"`
	Current   *benchPoint `json:"current"`
}

// measureEngine runs the canonical engine workload under the testing
// benchmark driver and converts the result to a benchPoint.
func measureEngine() (benchPoint, error) {
	var failed error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cellsim.Run(benchmarks.EngineTickConfig(uint64(i + 1))); err != nil {
				failed = err
				b.Fatal(err)
			}
		}
	})
	if failed != nil {
		return benchPoint{}, failed
	}
	ns := res.NsPerOp()
	return benchPoint{
		SimsecPerSec: benchmarks.EngineSimSeconds / (float64(ns) / 1e9),
		NsPerOp:      ns,
		AllocsPerOp:  res.AllocsPerOp(),
	}, nil
}

func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

// runBench handles -json / -check-against and returns the process exit
// code.
func runBench(jsonPath, checkPath string) int {
	cur, err := measureEngine()
	if err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: engine benchmark: %v\n", err)
		return 1
	}
	fmt.Printf("BenchmarkEngineTick: %.1f simsec/sec, %d ns/op, %d allocs/op\n",
		cur.SimsecPerSec, cur.NsPerOp, cur.AllocsPerOp)

	if jsonPath != "" {
		out := benchFile{Benchmark: "BenchmarkEngineTick", Metric: "simsec/sec", Current: &cur}
		if prev, err := loadBenchFile(jsonPath); err == nil {
			out.Baseline = prev.Baseline // the committed baseline is never overwritten
		}
		data, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	if checkPath != "" {
		ref, err := loadBenchFile(checkPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
			return 1
		}
		if ref.Current == nil || ref.Current.SimsecPerSec <= 0 {
			fmt.Fprintf(os.Stderr, "flarebench: %s has no current measurement to check against\n", checkPath)
			return 1
		}
		floor := 0.8 * ref.Current.SimsecPerSec
		if cur.SimsecPerSec < floor {
			fmt.Fprintf(os.Stderr,
				"flarebench: PERF REGRESSION: %.1f simsec/sec is more than 20%% below the committed %.1f (floor %.1f)\n",
				cur.SimsecPerSec, ref.Current.SimsecPerSec, floor)
			return 1
		}
		fmt.Printf("perf check OK: %.1f simsec/sec vs committed %.1f (floor %.1f)\n",
			cur.SimsecPerSec, ref.Current.SimsecPerSec, floor)
	}
	return 0
}

// runTrace executes the canonical engine workload once with the flight
// recorder attached, streaming its event log to tracePath and dumping
// the derived counters to stdout — the benchmark-shaped way to produce
// a flaretrace-readable trace and a metrics snapshot.
func runTrace(tracePath string) int {
	sink, err := obs.CreateJSONLFile(tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
		return 1
	}
	rec := obs.New(obs.Options{RingSize: -1, Sinks: []obs.Sink{sink}})
	cfg := benchmarks.EngineTickConfig(1)
	cfg.Obs = rec
	if _, err := cellsim.Run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: engine workload: %v\n", err)
		return 1
	}
	if err := rec.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: trace: %v\n", err)
		return 1
	}
	if err := rec.Metrics().WritePrometheus(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (%d events recorded)\n", tracePath, rec.Metrics().Events.Load())
	return 0
}

func run() int {
	var (
		scaleName  = flag.String("scale", "quick", `experiment scale: "quick" or "full" (paper durations, 20 runs)`)
		factor     = flag.Float64("factor", 0, "override duration factor (1 = paper scale)")
		runs       = flag.Int("runs", 0, "override runs per data point")
		only       = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		outDir     = flag.String("out", "results", "output directory for tables and CSV series")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		plot       = flag.Bool("plot", false, "render ASCII plots of each experiment's series")
		jsonPath   = flag.String("json", "", "measure the engine benchmark and write BENCH_engine.json-style output here (skips experiments)")
		checkPath  = flag.String("check-against", "", "measure the engine benchmark and fail on >20% simsec/sec regression vs this file (skips experiments)")
		tracePath  = flag.String("trace", "", "run the canonical engine workload once with telemetry recording, write its JSONL trace here, and dump counters (skips experiments)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "flarebench")
		return 0
	}

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
		return 1
	}
	defer func() {
		stopCPU()
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
		}
	}()

	if *jsonPath != "" || *checkPath != "" {
		return runBench(*jsonPath, *checkPath)
	}
	if *tracePath != "" {
		return runTrace(*tracePath)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "flarebench: unknown scale %q\n", *scaleName)
		return 2
	}
	if *factor > 0 {
		scale.DurationFactor = *factor
	}
	if *runs > 0 {
		scale.Runs = *runs
	}

	selected := experiments.All()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("--- running %s (%s) ...\n", e.ID, e.Title)
		rep, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Print(rep.String())
		if *plot && len(rep.Series) > 0 {
			fmt.Println(metrics.AsciiPlot(72, 18, rep.Series...))
		}
		fmt.Printf("--- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if err := rep.WriteFiles(*outDir); err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %s: %v\n", e.ID, err)
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	fmt.Printf("wrote results to %s\n", *outDir)
	return 0
}
