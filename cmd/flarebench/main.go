// Command flarebench regenerates every table and figure in the paper's
// evaluation (Tables I-II, Figures 4-12).
//
// Usage:
//
//	flarebench [-scale quick|full] [-factor F] [-runs N] [-only id,...] [-out dir]
//
// Text tables are printed to stdout; per-figure plot data (CSV) and the
// text views are written under -out (default ./results).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/flare-sim/flare/internal/experiments"
	"github.com/flare-sim/flare/internal/metrics"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		scaleName = flag.String("scale", "quick", `experiment scale: "quick" or "full" (paper durations, 20 runs)`)
		factor    = flag.Float64("factor", 0, "override duration factor (1 = paper scale)")
		runs      = flag.Int("runs", 0, "override runs per data point")
		only      = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		outDir    = flag.String("out", "results", "output directory for tables and CSV series")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		plot      = flag.Bool("plot", false, "render ASCII plots of each experiment's series")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "flarebench: unknown scale %q\n", *scaleName)
		return 2
	}
	if *factor > 0 {
		scale.DurationFactor = *factor
	}
	if *runs > 0 {
		scale.Runs = *runs
	}

	selected := experiments.All()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("--- running %s (%s) ...\n", e.ID, e.Title)
		rep, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Print(rep.String())
		if *plot && len(rep.Series) > 0 {
			fmt.Println(metrics.AsciiPlot(72, 18, rep.Series...))
		}
		fmt.Printf("--- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if err := rep.WriteFiles(*outDir); err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %s: %v\n", e.ID, err)
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	fmt.Printf("wrote results to %s\n", *outDir)
	return 0
}
