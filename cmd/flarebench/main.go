// Command flarebench regenerates every table and figure in the paper's
// evaluation (Tables I-II, Figures 4-12).
//
// Usage:
//
//	flarebench [-scale quick|full] [-factor F] [-runs N] [-only id,...] [-out dir]
//	           [-cpuprofile cpu.prof] [-memprofile mem.prof]
//	flarebench -json BENCH_engine.json
//	flarebench -json-multicell BENCH_multicell.json [-workers N]
//	flarebench -json-oneapi BENCH_oneapi.json [-shards N]
//	flarebench -check-against BENCH_engine.json -check-against BENCH_multicell.json
//	flarebench -trace engine.jsonl
//
// Text tables are printed to stdout; per-figure plot data (CSV) and the
// text views are written under -out (default ./results).
//
// -json measures the canonical engine benchmark (the BenchmarkEngineTick
// workload from internal/benchmarks) and writes its simsec/sec, ns/op
// and allocs/op to the given file, preserving any committed baseline
// block; -json-multicell does the same for the multi-cell scaling curve
// (the BenchmarkMultiCell workload at 1/4/16/64 cells, aggregate
// simsec/sec per point); -json-oneapi measures the control-plane load
// workload (BenchmarkOneAPILoad: the internal/loadgen driver against an
// in-process sharded OneAPI server, BAI rounds/sec plus latency
// percentiles and sessions/sec). All record GOMAXPROCS, worker/shard
// counts, and the CPU model so numbers are comparable across machines.
// -check-against is repeatable (and accepts comma-separated paths): each
// file's Benchmark field names the workload to measure, and the run
// exits nonzero if any measurement regressed more than 20% against that
// file's committed current numbers — the CI perf gates.
//
// -trace runs the same canonical engine workload once with telemetry
// recording enabled, writes its JSONL event stream (readable with
// flaretrace) to the given file, and dumps the run's counters and
// solver-latency histogram in Prometheus text to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/benchmarks"
	"github.com/flare-sim/flare/internal/buildinfo"
	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/experiments"
	"github.com/flare-sim/flare/internal/loadgen"
	"github.com/flare-sim/flare/internal/metrics"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/oneapi"
	"github.com/flare-sim/flare/internal/profiling"
)

func main() {
	os.Exit(run())
}

// benchEnv captures the execution environment of a measurement so
// committed bench numbers are interpretable across machines.
type benchEnv struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

// scalePoint is one cell count of the multi-cell scaling curve.
// SimsecPerSec is aggregate: cells x simulated seconds / wall second.
type scalePoint struct {
	Cells        int     `json:"cells"`
	SimsecPerSec float64 `json:"simsec_per_sec"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
}

// benchPoint is one measurement: the single-cell engine numbers, the
// scaling curve in Points (BenchmarkMultiCell), or the control-plane
// load numbers (BenchmarkOneAPILoad).
type benchPoint struct {
	Label        string       `json:"label,omitempty"`
	SimsecPerSec float64      `json:"simsec_per_sec,omitempty"`
	NsPerOp      int64        `json:"ns_per_op,omitempty"`
	AllocsPerOp  int64        `json:"allocs_per_op,omitempty"`
	Env          *benchEnv    `json:"env,omitempty"`
	Points       []scalePoint `json:"points,omitempty"`

	// BenchmarkOneAPILoad fields: BAI rounds/sec is the gated metric;
	// the rest contextualise it.
	RoundsPerSec   float64 `json:"rounds_per_sec,omitempty"`
	SessionsPerSec float64 `json:"sessions_per_sec,omitempty"`
	Sessions       int     `json:"sessions,omitempty"`
	P50Seconds     float64 `json:"p50_seconds,omitempty"`
	P95Seconds     float64 `json:"p95_seconds,omitempty"`
	P99Seconds     float64 `json:"p99_seconds,omitempty"`
}

// benchFile is the BENCH_engine.json / BENCH_multicell.json schema: the
// committed pre-change baseline (never overwritten by -json) and the
// current measurement. The Benchmark field names the workload, which is
// how -check-against knows what to measure for each file it is given.
type benchFile struct {
	Benchmark string      `json:"benchmark"`
	Metric    string      `json:"metric"`
	Baseline  *benchPoint `json:"baseline,omitempty"`
	Current   *benchPoint `json:"current"`
}

const (
	engineBenchName    = "BenchmarkEngineTick"
	multiCellBenchName = "BenchmarkMultiCell"
	oneAPIBenchName    = "BenchmarkOneAPILoad"
)

// measureEnv snapshots the environment; workers is the effective
// worker-pool width of the measured workload (1 for the single-cell
// engine benchmark).
func measureEnv(workers int) *benchEnv {
	return &benchEnv{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		CPUModel:   benchmarks.CPUModel(),
	}
}

// measureEngine runs the canonical engine workload under the testing
// benchmark driver and converts the result to a benchPoint.
func measureEngine() (benchPoint, error) {
	var failed error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cellsim.Run(benchmarks.EngineTickConfig(uint64(i + 1))); err != nil {
				failed = err
				b.Fatal(err)
			}
		}
	})
	if failed != nil {
		return benchPoint{}, failed
	}
	ns := res.NsPerOp()
	return benchPoint{
		SimsecPerSec: benchmarks.EngineSimSeconds / (float64(ns) / 1e9),
		NsPerOp:      ns,
		AllocsPerOp:  res.AllocsPerOp(),
		Env:          measureEnv(1),
	}, nil
}

// measureMultiCell runs the multi-cell scaling workload (the
// BenchmarkMultiCell cell counts) through the inter-cell worker pool
// and returns the aggregate-simsec/sec curve. workers 0 means
// GOMAXPROCS, mirroring cellsim.MultiConfig.
func measureMultiCell(workers int) (benchPoint, error) {
	effective := workers
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	pt := benchPoint{Env: measureEnv(effective)}
	for _, cells := range benchmarks.MultiCellCounts() {
		cells := cells
		var failed error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				server := oneapi.NewServer(core.DefaultConfig(), nil)
				cfgs := benchmarks.MultiCellConfigs(cells, uint64(i*cells+1))
				if _, err := cellsim.RunMultiConfig(context.Background(),
					cellsim.MultiConfig{Workers: workers}, server, cfgs...); err != nil {
					failed = err
					b.Fatal(err)
				}
			}
		})
		if failed != nil {
			return benchPoint{}, failed
		}
		ns := res.NsPerOp()
		pt.Points = append(pt.Points, scalePoint{
			Cells:        cells,
			SimsecPerSec: float64(cells) * benchmarks.MultiCellSimSeconds / (float64(ns) / 1e9),
			NsPerOp:      ns,
			AllocsPerOp:  res.AllocsPerOp(),
		})
	}
	return pt, nil
}

// measureOneAPI runs the canonical control-plane load workload: the
// loadgen driver against an in-process HTTP OneAPI server sharded
// shards ways (0 = the oneapi default). The gated metric is BAI
// rounds/sec; sessions/sec and the round-trip percentiles ride along.
// The workload is HTTP round-trips over a loopback socket, so
// wall-clock noise on a shared CI core is large; the measurement is
// best-of-three by rounds/sec, matching the file's committed
// best-of-three.
func measureOneAPI(shards int) (benchPoint, error) {
	var best benchPoint
	for i := 0; i < 3; i++ {
		pt, err := measureOneAPIOnce(shards)
		if err != nil {
			return benchPoint{}, err
		}
		if pt.RoundsPerSec > best.RoundsPerSec {
			best = pt
		}
	}
	return best, nil
}

func measureOneAPIOnce(shards int) (benchPoint, error) {
	var server *oneapi.Server
	if shards > 0 {
		server = oneapi.NewServerSharded(benchmarks.OneAPIServerConfig(), nil, shards)
	} else {
		server = oneapi.NewServer(benchmarks.OneAPIServerConfig(), nil)
	}
	defer server.Close()
	srv := httptest.NewServer(oneapi.Handler(server))
	defer srv.Close()

	res, err := loadgen.Run(benchmarks.OneAPILoadConfig(srv.URL), nil)
	if err != nil {
		return benchPoint{}, err
	}
	if res.OpenErrors > 0 || res.RoundErrors > 0 || res.PollErrors > 0 {
		return benchPoint{}, fmt.Errorf("load run had errors: %d open, %d round, %d poll",
			res.OpenErrors, res.RoundErrors, res.PollErrors)
	}
	env := measureEnv(0)
	env.Shards = server.Shards()
	return benchPoint{
		Env:            env,
		RoundsPerSec:   res.RoundsPerSec,
		SessionsPerSec: res.SessionsPerSec,
		Sessions:       res.Sessions,
		P50Seconds:     res.P50Seconds,
		P95Seconds:     res.P95Seconds,
		P99Seconds:     res.P99Seconds,
	}, nil
}

func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

// writeBenchFile refreshes path with cur as the new current
// measurement, preserving any committed baseline block.
func writeBenchFile(path, benchmark, metric string, cur *benchPoint) int {
	out := benchFile{Benchmark: benchmark, Metric: metric, Current: cur}
	if prev, err := loadBenchFile(path); err == nil {
		out.Baseline = prev.Baseline // the committed baseline is never overwritten
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// checkEngine gates the single-cell measurement against a committed
// file: >20% simsec/sec regression fails.
func checkEngine(path string, ref *benchFile, cur benchPoint) int {
	if ref.Current == nil || ref.Current.SimsecPerSec <= 0 {
		fmt.Fprintf(os.Stderr, "flarebench: %s has no current measurement to check against\n", path)
		return 1
	}
	floor := 0.8 * ref.Current.SimsecPerSec
	if cur.SimsecPerSec < floor {
		fmt.Fprintf(os.Stderr,
			"flarebench: PERF REGRESSION: %.1f simsec/sec is more than 20%% below the committed %.1f (floor %.1f)\n",
			cur.SimsecPerSec, ref.Current.SimsecPerSec, floor)
		return 1
	}
	fmt.Printf("perf check OK: %.1f simsec/sec vs committed %.1f (floor %.1f)\n",
		cur.SimsecPerSec, ref.Current.SimsecPerSec, floor)
	return 0
}

// checkMultiCell gates every point of the measured scaling curve
// against the committed curve, matched by cell count.
func checkMultiCell(path string, ref *benchFile, cur benchPoint) int {
	if ref.Current == nil || len(ref.Current.Points) == 0 {
		fmt.Fprintf(os.Stderr, "flarebench: %s has no scaling curve to check against\n", path)
		return 1
	}
	committed := make(map[int]scalePoint, len(ref.Current.Points))
	for _, p := range ref.Current.Points {
		committed[p.Cells] = p
	}
	code := 0
	for _, p := range cur.Points {
		want, ok := committed[p.Cells]
		if !ok || want.SimsecPerSec <= 0 {
			continue // cell count not in the committed curve
		}
		floor := 0.8 * want.SimsecPerSec
		if p.SimsecPerSec < floor {
			fmt.Fprintf(os.Stderr,
				"flarebench: PERF REGRESSION at %d cells: %.1f aggregate simsec/sec is more than 20%% below the committed %.1f (floor %.1f)\n",
				p.Cells, p.SimsecPerSec, want.SimsecPerSec, floor)
			code = 1
			continue
		}
		fmt.Printf("perf check OK at %d cells: %.1f aggregate simsec/sec vs committed %.1f (floor %.1f)\n",
			p.Cells, p.SimsecPerSec, want.SimsecPerSec, floor)
	}
	return code
}

// checkOneAPI gates the control-plane load measurement: >20% BAI
// rounds/sec regression fails.
func checkOneAPI(path string, ref *benchFile, cur benchPoint) int {
	if ref.Current == nil || ref.Current.RoundsPerSec <= 0 {
		fmt.Fprintf(os.Stderr, "flarebench: %s has no current measurement to check against\n", path)
		return 1
	}
	floor := 0.8 * ref.Current.RoundsPerSec
	if cur.RoundsPerSec < floor {
		fmt.Fprintf(os.Stderr,
			"flarebench: PERF REGRESSION: %.1f BAI rounds/sec is more than 20%% below the committed %.1f (floor %.1f)\n",
			cur.RoundsPerSec, ref.Current.RoundsPerSec, floor)
		return 1
	}
	fmt.Printf("perf check OK: %.1f BAI rounds/sec vs committed %.1f (floor %.1f)\n",
		cur.RoundsPerSec, ref.Current.RoundsPerSec, floor)
	return 0
}

// runBench handles -json / -json-multicell / -json-oneapi /
// -check-against and returns the process exit code. Each -check-against
// file is measured with the workload its Benchmark field names;
// measurements are shared across files so passing every gate costs one
// run per workload.
func runBench(jsonPath, jsonMultiPath, jsonOneAPIPath string, checkPaths []string, workers, shards int) int {
	needEngine := jsonPath != ""
	needMulti := jsonMultiPath != ""
	needOneAPI := jsonOneAPIPath != ""

	type loaded struct {
		path string
		file *benchFile
	}
	var refs []loaded
	for _, path := range checkPaths {
		ref, err := loadBenchFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
			return 1
		}
		switch ref.Benchmark {
		case engineBenchName:
			needEngine = true
		case multiCellBenchName:
			needMulti = true
		case oneAPIBenchName:
			needOneAPI = true
		default:
			fmt.Fprintf(os.Stderr, "flarebench: %s names unknown benchmark %q\n", path, ref.Benchmark)
			return 1
		}
		refs = append(refs, loaded{path, ref})
	}
	if !needEngine && !needMulti && !needOneAPI {
		needEngine = true // bare invocation: measure the engine
	}

	var engineCur, multiCur, oneAPICur benchPoint
	if needEngine {
		var err error
		if engineCur, err = measureEngine(); err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: engine benchmark: %v\n", err)
			return 1
		}
		fmt.Printf("%s: %.1f simsec/sec, %d ns/op, %d allocs/op (GOMAXPROCS=%d)\n",
			engineBenchName, engineCur.SimsecPerSec, engineCur.NsPerOp,
			engineCur.AllocsPerOp, engineCur.Env.GOMAXPROCS)
	}
	if needMulti {
		var err error
		if multiCur, err = measureMultiCell(workers); err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: multi-cell benchmark: %v\n", err)
			return 1
		}
		for _, p := range multiCur.Points {
			fmt.Printf("%s/cells=%d: %.1f aggregate simsec/sec, %d ns/op, %d allocs/op (workers=%d, GOMAXPROCS=%d)\n",
				multiCellBenchName, p.Cells, p.SimsecPerSec, p.NsPerOp, p.AllocsPerOp,
				multiCur.Env.Workers, multiCur.Env.GOMAXPROCS)
		}
	}

	if needOneAPI {
		var err error
		if oneAPICur, err = measureOneAPI(shards); err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: oneapi load benchmark: %v\n", err)
			return 1
		}
		fmt.Printf("%s: %.1f BAI rounds/sec, %.0f sessions/sec, %d sessions, p50 %.1fms p95 %.1fms p99 %.1fms (shards=%d, GOMAXPROCS=%d)\n",
			oneAPIBenchName, oneAPICur.RoundsPerSec, oneAPICur.SessionsPerSec, oneAPICur.Sessions,
			oneAPICur.P50Seconds*1e3, oneAPICur.P95Seconds*1e3, oneAPICur.P99Seconds*1e3,
			oneAPICur.Env.Shards, oneAPICur.Env.GOMAXPROCS)
	}

	if jsonPath != "" {
		if code := writeBenchFile(jsonPath, engineBenchName, "simsec/sec", &engineCur); code != 0 {
			return code
		}
	}
	if jsonMultiPath != "" {
		if code := writeBenchFile(jsonMultiPath, multiCellBenchName, "aggregate simsec/sec", &multiCur); code != 0 {
			return code
		}
	}
	if jsonOneAPIPath != "" {
		if code := writeBenchFile(jsonOneAPIPath, oneAPIBenchName, "bai rounds/sec", &oneAPICur); code != 0 {
			return code
		}
	}

	code := 0
	for _, ref := range refs {
		switch ref.file.Benchmark {
		case engineBenchName:
			if c := checkEngine(ref.path, ref.file, engineCur); c != 0 {
				code = c
			}
		case multiCellBenchName:
			if c := checkMultiCell(ref.path, ref.file, multiCur); c != 0 {
				code = c
			}
		case oneAPIBenchName:
			if c := checkOneAPI(ref.path, ref.file, oneAPICur); c != 0 {
				code = c
			}
		}
	}
	return code
}

// runTrace executes the canonical engine workload once with the flight
// recorder attached, streaming its event log to tracePath and dumping
// the derived counters to stdout — the benchmark-shaped way to produce
// a flaretrace-readable trace and a metrics snapshot.
func runTrace(tracePath string) int {
	sink, err := obs.CreateJSONLFile(tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
		return 1
	}
	rec := obs.New(obs.Options{RingSize: -1, Sinks: []obs.Sink{sink}})
	cfg := benchmarks.EngineTickConfig(1)
	cfg.Obs = rec
	if _, err := cellsim.Run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: engine workload: %v\n", err)
		return 1
	}
	if err := rec.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: trace: %v\n", err)
		return 1
	}
	if err := rec.Metrics().WritePrometheus(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (%d events recorded)\n", tracePath, rec.Metrics().Events.Load())
	return 0
}

func run() int {
	var (
		scaleName     = flag.String("scale", "quick", `experiment scale: "quick" or "full" (paper durations, 20 runs)`)
		factor        = flag.Float64("factor", 0, "override duration factor (1 = paper scale)")
		runs          = flag.Int("runs", 0, "override runs per data point")
		only          = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		outDir        = flag.String("out", "results", "output directory for tables and CSV series")
		list          = flag.Bool("list", false, "list experiment IDs and exit")
		plot          = flag.Bool("plot", false, "render ASCII plots of each experiment's series")
		jsonPath      = flag.String("json", "", "measure the engine benchmark and write BENCH_engine.json-style output here (skips experiments)")
		jsonMultiPath = flag.String("json-multicell", "", "measure the multi-cell scaling curve and write BENCH_multicell.json-style output here (skips experiments)")
		jsonOneAPI    = flag.String("json-oneapi", "", "measure the control-plane load workload and write BENCH_oneapi.json-style output here (skips experiments)")
		workers       = flag.Int("workers", 0, "worker-pool width for the multi-cell measurement (0 = GOMAXPROCS)")
		shards        = flag.Int("shards", 0, "shard count of the OneAPI server under load measurement (0 = oneapi default)")
		tracePath     = flag.String("trace", "", "run the canonical engine workload once with telemetry recording, write its JSONL trace here, and dump counters (skips experiments)")
		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile    = flag.String("memprofile", "", "write a heap profile at exit to this file")
		version       = flag.Bool("version", false, "print version and exit")
	)
	var checkPaths []string
	flag.Func("check-against",
		"measure the workload a baseline file names and fail on >20% simsec/sec regression; repeatable, and accepts comma-separated paths (skips experiments)",
		func(v string) error {
			for _, p := range strings.Split(v, ",") {
				if p = strings.TrimSpace(p); p != "" {
					checkPaths = append(checkPaths, p)
				}
			}
			return nil
		})
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "flarebench")
		return 0
	}

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
		return 1
	}
	defer func() {
		stopCPU()
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
		}
	}()

	if *jsonPath != "" || *jsonMultiPath != "" || *jsonOneAPI != "" || len(checkPaths) > 0 {
		return runBench(*jsonPath, *jsonMultiPath, *jsonOneAPI, checkPaths, *workers, *shards)
	}
	if *tracePath != "" {
		return runTrace(*tracePath)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "flarebench: unknown scale %q\n", *scaleName)
		return 2
	}
	if *factor > 0 {
		scale.DurationFactor = *factor
	}
	if *runs > 0 {
		scale.Runs = *runs
	}

	selected := experiments.All()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintf(os.Stderr, "flarebench: %v\n", err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("--- running %s (%s) ...\n", e.ID, e.Title)
		rep, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Print(rep.String())
		if *plot && len(rep.Series) > 0 {
			fmt.Println(metrics.AsciiPlot(72, 18, rep.Series...))
		}
		fmt.Printf("--- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if err := rep.WriteFiles(*outDir); err != nil {
			fmt.Fprintf(os.Stderr, "flarebench: %s: %v\n", e.ID, err)
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	fmt.Printf("wrote results to %s\n", *outDir)
	return 0
}
