// Command flarevet is the project's multichecker: it runs the
// internal/lint analyzer suite — determinism, seedpurity, layering,
// hotpath, obsdiscipline, lockorder, slotwrite, and the directive
// audit — over the packages matching its arguments and exits non-zero
// if any invariant is violated.
//
// Usage:
//
//	flarevet                         # whole module (./...)
//	flarevet ./internal/oneapi/...   # any go-list package patterns
//	flarevet -json ./...             # findings as a JSON array on stdout
//	flarevet -help-analyzers         # analyzer documentation
//
// Analyzer applicability is governed by the declarative ruleset in
// internal/lint/rules.go: determinism and seedpurity run only inside
// the sim-clock domain; the other six run everywhere. The whole run is
// one fact-store session: packages are analyzed in dependency order so
// call-graph facts (hotpath summaries, seed sinks) and waivers flow
// from callees to callers. For narrow patterns the in-module
// dependency closure is analyzed too, but findings are printed only
// for the requested packages; the stale-waiver audit runs only on
// whole-module invocations, where every directive is in view. Findings
// are suppressed only by //flare:allow <reason> directives (see
// internal/lint).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/flare-sim/flare/internal/buildinfo"
	"github.com/flare-sim/flare/internal/lint"
)

func main() {
	showVersion := flag.Bool("version", false, "print version and exit")
	showDocs := flag.Bool("help-analyzers", false, "print analyzer documentation and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = usage
	flag.Parse()
	if *showVersion {
		buildinfo.Print(os.Stdout, "flarevet")
		return
	}
	if *showDocs {
		fmt.Print(lint.AnalyzerHelp())
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flarevet:", err)
		os.Exit(2)
	}

	// One fact-store session over the dependency-ordered package list:
	// callee facts and waivers are in the store before callers run.
	store := lint.NewFactStore()
	var diags []lint.Diagnostic
	allTargets := true
	for _, pkg := range pkgs {
		ds := lint.RunWithFacts(pkg, lint.AnalyzersFor(pkg.Path), store)
		if pkg.Target {
			diags = append(diags, ds...)
		} else {
			allTargets = false
		}
	}
	// The stale-waiver audit needs every directive's consumers in view;
	// a narrow run that skipped sibling packages would cry wolf.
	if allTargets {
		diags = append(diags, store.StaleWaivers()...)
	}
	lint.SortDiagnostics(diags)

	if *asJSON {
		printJSON(diags)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "flarevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonFinding is the -json wire shape; file is working-directory
// relative when possible so CI annotations resolve in-repo paths.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(diags []lint.Diagnostic) {
	out := make([]jsonFinding, 0, len(diags))
	cwd, _ := os.Getwd()
	for _, d := range diags {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && filepath.IsLocal(rel) {
				file = rel
			}
		}
		out = append(out, jsonFinding{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "flarevet:", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: flarevet [flags] [packages]\n\n")
	fmt.Fprintf(os.Stderr, "Runs the FLARE invariant analyzers over the given package patterns\n")
	fmt.Fprintf(os.Stderr, "(default ./...). Narrow patterns analyze the in-module dependency\n")
	fmt.Fprintf(os.Stderr, "closure for cross-package facts but report findings only for the\n")
	fmt.Fprintf(os.Stderr, "requested packages.\n\n")
	flag.PrintDefaults()
	fmt.Fprintf(os.Stderr, "\nRun with -help-analyzers for what each analyzer enforces.\n")
}
