// Command flarevet is the project's multichecker: it runs the
// internal/lint analyzer suite (determinism, layering, hotpath,
// obsdiscipline) over the packages matching its arguments and exits
// non-zero if any invariant is violated.
//
// Usage:
//
//	flarevet [packages]          # default ./...
//	flarevet -help               # analyzer documentation
//
// Analyzer applicability is governed by the declarative ruleset in
// internal/lint/rules.go: determinism runs only inside the sim-clock
// domain; the other three run everywhere. Findings are suppressed only
// by //flare:allow <reason> directives (see internal/lint).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/flare-sim/flare/internal/buildinfo"
	"github.com/flare-sim/flare/internal/lint"
)

func main() {
	showVersion := flag.Bool("version", false, "print version and exit")
	showDocs := flag.Bool("help-analyzers", false, "print analyzer documentation and exit")
	flag.Usage = usage
	flag.Parse()
	if *showVersion {
		buildinfo.Print(os.Stdout, "flarevet")
		return
	}
	if *showDocs {
		printDocs()
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flarevet:", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, lint.AnalyzersFor(pkg.Path)) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "flarevet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: flarevet [flags] [packages]\n\n")
	fmt.Fprintf(os.Stderr, "Runs the FLARE invariant analyzers over the given packages (default ./...).\n\n")
	flag.PrintDefaults()
	fmt.Fprintf(os.Stderr, "\nRun with -help-analyzers for what each analyzer enforces.\n")
}

func printDocs() {
	for _, a := range lint.Analyzers() {
		fmt.Printf("%s\n    %s\n\n", a.Name, a.Doc)
	}
	fmt.Printf("directive\n    validates //flare:allow <reason> and //flare:hotpath grammar\n")
}
