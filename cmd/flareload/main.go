// Command flareload replays synthetic control-plane traffic against a
// live oneapiserver: per cell, a synthetic eNodeB posting statistics
// reports (BAI rounds) and a population of plugin clients opening
// sessions, polling assignments, and churning. It reports the two
// numbers the city-scale control-plane story stands on — sustained
// sessions/sec on the open path, and BAI round-trip p50/p95/p99 on the
// stats path — and can export live counters via its own /metrics
// endpoint while the run is in flight.
//
// The request stream is deterministic (synthetic radio accounting
// derived from flow/round indices); only timing varies between runs.
//
// Usage:
//
//	flareload -url http://127.0.0.1:8480 [-cells 100] [-sessions 100]
//	          [-rounds 30] [-interval 0] [-churn-every 0] [-batch]
//	          [-first-cell 0] [-metrics :9480] [-out results.json] [-version]
//
// Example — the 10k-session acceptance run:
//
//	oneapiserver -addr :8480 -shards 16 &
//	flareload -url http://127.0.0.1:8480 -cells 100 -sessions 100 -rounds 30
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/flare-sim/flare/internal/buildinfo"
	"github.com/flare-sim/flare/internal/loadgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		url        = flag.String("url", "http://127.0.0.1:8480", "base URL of the oneapiserver under test")
		cells      = flag.Int("cells", 100, "synthetic eNodeBs (also the request concurrency)")
		sessions   = flag.Int("sessions", 100, "plugin sessions per cell (total = cells * sessions)")
		firstCell  = flag.Int("first-cell", 0, "first cell ID (offset the range so several drivers can share a server)")
		rounds     = flag.Int("rounds", 30, "BAI rounds per cell")
		interval   = flag.Duration("interval", 0, "pacing between a cell's rounds (0 = back-to-back, the bench mode)")
		churnEvery = flag.Int("churn-every", 0, "close+reopen one session per cell every N rounds (0 = off)")
		batch      = flag.Bool("batch", false, "drive stats through /oneapi/v4/stats/batch (one aggregation site per round)")
		metrics    = flag.String("metrics", "", "serve live counters at this address (e.g. :9480) during the run")
		out        = flag.String("out", "", "write the JSON result to this file")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "flareload")
		return 0
	}

	cfg := loadgen.Config{
		BaseURL:         *url,
		Cells:           *cells,
		SessionsPerCell: *sessions,
		FirstCell:       *firstCell,
		Rounds:          *rounds,
		Interval:        *interval,
		ChurnEvery:      *churnEvery,
		Batch:           *batch,
	}
	tr := &loadgen.Tracker{}
	if *metrics != "" {
		msrv := &http.Server{Addr: *metrics, Handler: metricsMux(tr)}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "flareload: metrics server: %v\n", err)
			}
		}()
		defer msrv.Close()
		fmt.Printf("flareload: serving /metrics on %s\n", *metrics)
	}

	fmt.Printf("flareload: %d cells x %d sessions = %d concurrent sessions, %d rounds (batch=%v interval=%v) against %s\n",
		*cells, *sessions, *cells**sessions, *rounds, *batch, *interval, *url)
	start := time.Now()
	res, err := loadgen.Run(cfg, tr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flareload: %v\n", err)
		return 1
	}

	fmt.Printf("flareload: done in %.2fs\n", time.Since(start).Seconds())
	fmt.Printf("  sessions   %d opened (%d errors) in %.2fs -> %.0f sessions/sec\n",
		res.OpenedSessions, res.OpenErrors, res.OpenSeconds, res.SessionsPerSec)
	fmt.Printf("  BAI rounds %d (%d errors) in %.2fs -> %.0f rounds/sec\n",
		res.RoundsTotal, res.RoundErrors, res.RoundSeconds, res.RoundsPerSec)
	fmt.Printf("  round trip p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		res.P50Seconds*1e3, res.P95Seconds*1e3, res.P99Seconds*1e3)
	fmt.Printf("  polls      %d (%d errors)\n", res.Polls, res.PollErrors)

	if *out != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "flareload: marshal result: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "flareload: %v\n", err)
			return 1
		}
		fmt.Printf("flareload: wrote %s\n", *out)
	}
	if res.OpenErrors > 0 || res.RoundErrors > 0 || res.PollErrors > 0 {
		return 1
	}
	return 0
}

func metricsMux(tr *loadgen.Tracker) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", loadgen.MetricsHandler(tr))
	return mux
}
