// Command flaresim runs a single cell simulation and prints its summary:
// per-client bitrate/stability/stall metrics plus the cell-level
// aggregates the paper reports.
//
// Usage:
//
//	flaresim [-scheme flare|festive|google|avis] [-duration 1200s]
//	         [-videos 8] [-data 0] [-channel static|cyclic|mobility]
//	         [-itbs 12] [-ladder sim|testbed|fine] [-seed 1]
//	         [-alpha 1.0] [-delta 4] [-relax] [-workers 4]
//	         [-mix "flare:4,festive:4"]
//	         [-churn 40s -offered-load 2.0] [-admission] [-admission-queue 8]
//	         [-downgrade] [-objective eq2|upf]
//	         [-ctrl-loss 0.3] [-ctrl-blackout 60s-90s]
//	         [-fallback-polls 3] [-fallback-age 4]
//	         [-trace run.jsonl] [-metrics-dump]
//	         [-cpuprofile cpu.prof] [-memprofile mem.prof] [-version]
//
// -churn replaces the fixed population with Poisson arrivals and
// heavy-tailed session lengths; -offered-load scales the arrival rate
// against the cell's floor-carrying capacity (2.0 = twice what the RB
// budget can hold at the ladder floor). -admission/-downgrade turn on
// the saturation machinery: sessions the budget cannot floor are
// refused (and queued), and overload sheds per-flow ceilings down the
// ladder with hysteresis.
//
// -workers sizes the intra-cell worker pool (per-TTI per-bearer work).
// Results are byte-identical for any value — every concurrent phase
// folds its effects in bearer-ID order (DESIGN.md §14) — so the flag
// only trades wall clock; the run header prints the effective
// parallelism. Values below 1 are rejected.
//
// -mix runs a mixed-scheme cell: a comma-separated list of
// scheme:count groups that overrides -scheme/-videos for the video
// population (each group gets its own driver; results are attributed
// per scheme).
//
// -trace records every control-plane decision the run makes (BAI
// solves, Algorithm 1 clamps, installs, fallbacks, stalls, injected
// faults, ...) as a JSONL event stream for flaretrace; "-" streams the
// events to stdout and suppresses the human report so the output pipes
// cleanly into `flaretrace -`. -metrics-dump prints the run's telemetry
// counters and solver-latency histogram (Prometheus text) to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/flare-sim/flare/internal/abr"
	"github.com/flare-sim/flare/internal/buildinfo"
	"github.com/flare-sim/flare/internal/cellsim"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/metrics"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/profiling"
)

// parseWindows parses comma-separated "from-to" blackout windows, e.g.
// "60s-90s,300s-330s".
func parseWindows(s string) ([]faults.Window, error) {
	var out []faults.Window
	for _, part := range strings.Split(s, ",") {
		from, to, ok := strings.Cut(strings.TrimSpace(part), "-")
		if !ok {
			return nil, fmt.Errorf("blackout %q: want \"from-to\" (e.g. 60s-90s)", part)
		}
		f, err := time.ParseDuration(from)
		if err != nil {
			return nil, fmt.Errorf("blackout %q: %w", part, err)
		}
		t, err := time.ParseDuration(to)
		if err != nil {
			return nil, fmt.Errorf("blackout %q: %w", part, err)
		}
		out = append(out, faults.Window{From: f, To: t})
	}
	return out, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		schemeName  = flag.String("scheme", "flare", "rate adaptation scheme: flare, festive, google, avis, bba, mpc")
		duration    = flag.Duration("duration", 1200*time.Second, "simulated duration")
		videos      = flag.Int("videos", 8, "number of video clients")
		data        = flag.Int("data", 0, "number of greedy data flows")
		legacy      = flag.Int("legacy", 0, "number of conventional (non-coordinated) HAS players")
		channelName = flag.String("channel", "mobility", "channel model: static, cyclic, mobility")
		iTbs        = flag.Int("itbs", 12, "iTbs for the static channel")
		ladderName  = flag.String("ladder", "sim", "bitrate ladder: sim, testbed, fine")
		segDur      = flag.Duration("segment", 10*time.Second, "segment duration")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		alpha       = flag.Float64("alpha", 1.0, "FLARE data/video priority")
		delta       = flag.Int("delta", 4, "FLARE stability parameter")
		relax       = flag.Bool("relax", false, "use FLARE's continuous-relaxation solver")
		vbr         = flag.Float64("vbr", 0, "VBR segment-size jitter (0 = CBR, e.g. 0.3)")
		workers     = flag.Int("workers", 1, "intra-cell worker pool size (1 = sequential engine; any value gives byte-identical results)")
		mix         = flag.String("mix", "", `mixed-scheme cell as "scheme:count,scheme:count" (e.g. "flare:4,festive:4"); overrides -scheme/-videos`)

		churnDur    = flag.Duration("churn", 0, "enable session churn: mean session length (Poisson arrivals, Pareto durations); pairs with -offered-load and overrides -videos")
		offeredLoad = flag.Float64("offered-load", 0, "churn arrival rate as a multiple of the cell's floor-carrying capacity (requires -churn and -channel static)")
		admission   = flag.Bool("admission", false, "enable FLARE admission control: refuse sessions the RB budget cannot keep at the ladder floor")
		admQueue    = flag.Int("admission-queue", 0, "admission wait-queue depth (0 = default, negative = no queue)")
		downgrade   = flag.Bool("downgrade", false, "enable the FLARE overload downgrade ladder (ceiling shedding with hysteresis)")
		objective   = flag.String("objective", "", "FLARE utility objective: eq2 (paper default) or upf (utility-proportional fairness)")

		ctrlLoss     = flag.Float64("ctrl-loss", 0, "control-plane drop rate for stats reports and assignment polls (0..1)")
		ctrlSeed     = flag.Uint64("ctrl-seed", 0xfa17, "fault injector seed (independent of -seed)")
		ctrlBlackout = flag.String("ctrl-blackout", "", `control-plane blackout window, e.g. "60s-90s" (repeatable via comma: "60s-90s,300s-330s")`)
		fbPolls      = flag.Int("fallback-polls", 0, "plugin fallback after K consecutive failed polls (0 = default 3)")
		fbAge        = flag.Int("fallback-age", 0, "plugin fallback after an assignment M BAIs stale (0 = default 4)")

		tracePath   = flag.String("trace", "", `record the run's telemetry event stream as JSONL to this file ("-" = stdout, suppressing the report)`)
		metricsDump = flag.Bool("metrics-dump", false, "print telemetry counters and solver-latency histogram (Prometheus text) to stderr after the run")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "flaresim")
		return 0
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "flaresim: -workers must be >= 1 (1 = sequential engine), got %d\n", *workers)
		return 2
	}

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flaresim: %v\n", err)
		return 1
	}
	defer func() {
		stopCPU()
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fmt.Fprintf(os.Stderr, "flaresim: %v\n", err)
		}
	}()

	schemes := map[string]cellsim.Scheme{
		"flare":   cellsim.SchemeFLARE,
		"festive": cellsim.SchemeFESTIVE,
		"google":  cellsim.SchemeGOOGLE,
		"avis":    cellsim.SchemeAVIS,
		"bba":     cellsim.SchemeBBA,
		"mpc":     cellsim.SchemeMPC,
	}
	scheme, ok := schemes[*schemeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "flaresim: unknown scheme %q\n", *schemeName)
		return 2
	}
	var groups []cellsim.FlowGroup
	if *mix != "" {
		for _, part := range strings.Split(*mix, ",") {
			name, countStr, ok := strings.Cut(strings.TrimSpace(part), ":")
			if !ok {
				fmt.Fprintf(os.Stderr, "flaresim: -mix group %q: want \"scheme:count\"\n", part)
				return 2
			}
			gs, ok := schemes[strings.ToLower(strings.TrimSpace(name))]
			if !ok {
				fmt.Fprintf(os.Stderr, "flaresim: -mix: unknown scheme %q\n", name)
				return 2
			}
			count, err := strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil || count <= 0 {
				fmt.Fprintf(os.Stderr, "flaresim: -mix group %q: bad count\n", part)
				return 2
			}
			groups = append(groups, cellsim.FlowGroup{Scheme: gs, Count: count})
		}
		scheme = groups[0].Scheme
		nVideos := 0
		for _, g := range groups {
			nVideos += g.Count
		}
		*videos = nVideos
	}
	ladder, ok := map[string]has.Ladder{
		"sim":     has.SimLadder(),
		"testbed": has.TestbedLadder(),
		"fine":    has.FineLadder(),
	}[*ladderName]
	if !ok {
		fmt.Fprintf(os.Stderr, "flaresim: unknown ladder %q\n", *ladderName)
		return 2
	}

	cfg := cellsim.DefaultConfig(scheme)
	cfg.Seed = *seed
	cfg.Duration = *duration
	cfg.NumVideo = *videos
	if len(groups) > 0 {
		cfg.VideoGroups = groups
		cfg.NumVideo = 0
	}
	cfg.NumData = *data
	cfg.NumLegacy = *legacy
	cfg.Ladder = ladder
	cfg.SegmentDuration = *segDur
	cfg.Flare.Alpha = *alpha
	cfg.Flare.Delta = *delta
	cfg.Flare.UseRelaxation = *relax
	cfg.VBRJitter = *vbr
	cfg.IntraWorkers = *workers
	cfg.ControlFaults = faults.Config{Seed: *ctrlSeed, DropRate: *ctrlLoss}
	if *ctrlBlackout != "" {
		windows, err := parseWindows(*ctrlBlackout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flaresim: %v\n", err)
			return 2
		}
		cfg.ControlFaults.Blackouts = windows
	}
	cfg.Fallback = abr.FallbackConfig{AfterFailedPolls: *fbPolls, MaxAssignmentAgeBAIs: *fbAge}
	cfg.Flare.AdmissionControl = *admission
	cfg.Flare.AdmissionQueue = *admQueue
	cfg.Flare.DowngradeLadder = *downgrade
	cfg.Flare.Objective = *objective
	if _, ok := core.ObjectiveByName(*objective); !ok {
		fmt.Fprintf(os.Stderr, "flaresim: unknown objective %q (want one of %s)\n",
			*objective, strings.Join(core.ObjectiveNames(), ", "))
		return 2
	}

	switch *channelName {
	case "static":
		cfg.Channel = cellsim.ChannelSpec{Kind: cellsim.ChannelStatic, StaticITbs: *iTbs}
	case "cyclic":
		cfg.Channel = cellsim.ChannelSpec{
			Kind: cellsim.ChannelCyclic, CyclicMin: 1, CyclicMax: 12,
			CyclicPeriod: 4 * time.Minute,
		}
	case "mobility":
		cfg.Channel = cellsim.ChannelSpec{
			Kind:     cellsim.ChannelMobility,
			Mobility: lte.DefaultMobilityConfig(*videos + *data),
		}
	default:
		fmt.Fprintf(os.Stderr, "flaresim: unknown channel %q\n", *channelName)
		return 2
	}

	// Churn: -churn gives the mean session length, -offered-load the
	// arrival rate as a multiple of the cell's floor-carrying capacity
	// (how many sessions the RB budget holds at the ladder's lowest
	// encoding). Little's law turns the pair into a Poisson
	// interarrival gap. The capacity estimate needs a fixed link, so
	// churn is pinned to the static channel.
	if *churnDur > 0 || *offeredLoad > 0 {
		if *churnDur <= 0 || *offeredLoad <= 0 {
			fmt.Fprintln(os.Stderr, "flaresim: -churn and -offered-load go together")
			return 2
		}
		if cfg.Channel.Kind != cellsim.ChannelStatic {
			fmt.Fprintln(os.Stderr, "flaresim: -offered-load needs -channel static (the floor-capacity estimate is per-iTbs)")
			return 2
		}
		if len(groups) > 0 {
			fmt.Fprintln(os.Stderr, "flaresim: -churn does not support -mix")
			return 2
		}
		floorSessions := lte.CellRateBps(*iTbs) * cfg.Flare.CapacityMargin / cfg.Ladder.Min()
		gap := churnDur.Seconds() / (*offeredLoad * floorSessions)
		cfg.NumVideo = 0 // the generator populates the cell
		cfg.Churn = cellsim.ChurnConfig{
			Enabled:          true,
			MeanInterarrival: time.Duration(gap * float64(time.Second)),
			MeanDuration:     *churnDur,
		}
	}

	// Telemetry: -trace streams the event log as JSONL, -metrics-dump
	// prints the derived counters. Either one turns the recorder on;
	// without them the run pays the nil-recorder (zero allocation)
	// fast path.
	var rec *obs.Recorder
	quietReport := false
	if *tracePath != "" || *metricsDump {
		var sinks []obs.Sink
		switch *tracePath {
		case "":
		case "-":
			// Hide os.Stdout's Closer so the sink cannot close stdout.
			sinks = append(sinks, obs.NewJSONLSink(struct{ io.Writer }{os.Stdout}))
			quietReport = true
		default:
			sink, err := obs.CreateJSONLFile(*tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flaresim: %v\n", err)
				return 1
			}
			sinks = append(sinks, sink)
		}
		rec = obs.New(obs.Options{RingSize: -1, Sinks: sinks})
		cfg.Obs = rec
	}

	res, err := cellsim.Run(cfg)
	if cerr := rec.Close(); cerr != nil && err == nil {
		fmt.Fprintf(os.Stderr, "flaresim: trace: %v\n", cerr)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "flaresim: %v\n", err)
		return 1
	}
	if *metricsDump {
		if err := rec.Metrics().WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "flaresim: metrics dump: %v\n", err)
		}
	}
	if quietReport {
		return 0
	}

	nVideo := *videos
	if cfg.Churn.Enabled {
		nVideo = len(res.Clients)
	}
	// Effective parallelism: the pool cannot run more goroutines at
	// once than GOMAXPROCS, however many workers were requested.
	effPar := *workers
	if mp := runtime.GOMAXPROCS(0); effPar > mp {
		effPar = mp
	}
	fmt.Printf("%s over %v (%d video, %d data, %s channel, seed %d; workers %d, effective parallelism %d of %d cores)\n\n",
		scheme, *duration, nVideo, *data, *channelName, *seed, *workers, effPar, runtime.GOMAXPROCS(0))
	tbl := metrics.NewTable("Per-client results",
		"avg rate", "avg tput", "changes", "segments", "stall s", "startup s", "QoE")
	addClient := func(kind string, c cellsim.ClientResult) {
		tbl.AddRow(fmt.Sprintf("%s %d", kind, c.FlowID),
			metrics.FormatKbps(c.AvgRateBps),
			metrics.FormatKbps(c.AvgTputBps),
			fmt.Sprintf("%d", c.NumChanges),
			fmt.Sprintf("%d", c.Segments),
			fmt.Sprintf("%.1f", c.StallSeconds),
			fmt.Sprintf("%.1f", c.StartupDelaySeconds),
			fmt.Sprintf("%.0f", c.QoEScore),
		)
	}
	for _, c := range res.Clients {
		kind := "video"
		if len(groups) > 0 {
			kind = strings.ToLower(c.Scheme.String())
		}
		addClient(kind, c)
	}
	for _, c := range res.Legacy {
		addClient("legacy", c)
	}
	for _, d := range res.Data {
		tbl.AddRow(fmt.Sprintf("data %d", d.FlowID),
			"-", metrics.FormatKbps(d.AvgTputBps), "-", "-", "-", "-", "-")
	}
	fmt.Println(tbl.String())
	fmt.Printf("mean video rate:     %s\n", metrics.FormatKbps(res.MeanClientRate()))
	fmt.Printf("mean changes:        %.1f\n", res.MeanChanges())
	fmt.Printf("total stall:         %.1f s\n", res.TotalStallSeconds())
	fmt.Printf("Jain (rates):        %.3f\n", res.JainOfRates())
	fmt.Printf("Jain (tputs):        %.3f\n", res.JainOfTputs())
	if n := len(res.SolveTimesSec); n > 0 {
		cdf := metrics.NewCDF(res.SolveTimesSec)
		fmt.Printf("solver (n=%d):       median %.3f ms, max %.3f ms\n",
			n, cdf.Quantile(0.5)*1000, cdf.Max()*1000)
	}
	if cp := res.ControlPlane; cp != (cellsim.ControlPlaneStats{}) || res.TotalFallbackTransitions() > 0 {
		fmt.Printf("ctrl-plane faults:   %d reports lost, %d polls lost, %d enforce failures\n",
			cp.ReportsLost, cp.PollsLost, cp.EnforceFailures)
		var fbBAIs int
		for _, c := range res.Clients {
			fbBAIs += c.FallbackIntervals
		}
		fmt.Printf("plugin fallback:     %d mode transitions, %d degraded BAIs across clients\n",
			res.TotalFallbackTransitions(), fbBAIs)
	}
	if *admission {
		adm := 0
		for _, c := range res.Clients {
			if c.Admitted {
				adm++
			}
		}
		fmt.Printf("admission:           %d/%d flows admitted, %d refused opens\n",
			adm, len(res.Clients), res.ControlPlane.AdmissionRejects)
	}
	return 0
}
