// Command flaresuite lists and runs the declarative scenario registry:
// named ScenarioSpecs over the channel x churn x faults x mix x ladder
// axis space, expanded (-matrix) into cross-products and fanned out
// across cores with a deterministic, input-index-ordered summary.
//
// Usage:
//
//	flaresuite list [-matrix] [-axis key=value,...] [-v]
//	flaresuite run  [-scenario a,b] [-axis key=value,...] [-scale quick|full]
//	                [-factor F] [-runs N] [-matrix] [-workers N] [-out dir]
//	flaresuite -version
//
// `run` writes per-scenario artifact directories (JSONL traces, report
// tables/CSVs, logs) plus a machine-readable summary.json under -out,
// and prints the summary table. summary.json is byte-identical at any
// -workers value. SIGINT/SIGTERM drains gracefully: in-flight scenarios
// finish and flush their artifacts, unstarted ones are marked skipped,
// and summary.json is still written; a second signal kills the process.
//
// Examples:
//
//	flaresuite list -v
//	flaresuite run -scenario flash-crowd -scale quick -out suite-out
//	flaresuite run -matrix -axis mix=flare -scale quick -out suite-out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/flare-sim/flare/internal/buildinfo"
	"github.com/flare-sim/flare/internal/flaresuite"
	"github.com/flare-sim/flare/internal/graceful"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) > 0 && (args[0] == "-version" || args[0] == "--version") {
		buildinfo.Print(os.Stdout, "flaresuite")
		return 0
	}
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "list":
		return runList(args[1:])
	case "run":
		return runRun(args[1:])
	case "help", "-h", "-help", "--help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "flaresuite: unknown command %q\n", args[0])
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  flaresuite list [-matrix] [-axis key=value,...] [-v]
  flaresuite run  [-scenario a,b] [-axis key=value,...] [-scale quick|full]
                  [-factor F] [-runs N] [-matrix] [-workers N] [-out dir]
  flaresuite -version
`)
}

// parseAxisFilter parses "key=value,key=value".
func parseAxisFilter(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("flaresuite: bad -axis entry %q (want key=value)", kv)
		}
		// Validate against the axis taxonomy so a typo is an error,
		// not an empty filter result.
		var probe flaresuite.Axes
		if err := probe.Set(k, v); err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

func splitNames(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func runList(args []string) int {
	fs := flag.NewFlagSet("flaresuite list", flag.ExitOnError)
	var (
		matrix  = fs.Bool("matrix", false, "list every matrix point instead of one line per spec")
		axis    = fs.String("axis", "", "filter by axis values (key=value,...)")
		verbose = fs.Bool("v", false, "show descriptions and applied axes")
	)
	fs.Parse(args)

	filter, err := parseAxisFilter(*axis)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	instances, err := flaresuite.Expand(flaresuite.Default(), flaresuite.Options{
		Expand: *matrix, AxisFilter: filter, Names: splitNames(fs.Arg(0)),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	for _, inst := range instances {
		if !*verbose {
			fmt.Println(inst.Name)
			continue
		}
		fmt.Printf("%-40s %s\n", inst.Name, inst.Spec.Description)
		fmt.Printf("%-40s axes: %s", "", formatAxes(inst.Axes))
		if !*matrix && inst.Spec.Matrix.Size() > 1 {
			fmt.Printf("  (matrix: %d points)", inst.Spec.Matrix.Size())
		}
		fmt.Println()
	}
	return 0
}

func formatAxes(a flaresuite.Axes) string {
	m := a.Map()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return strings.Join(parts, " ")
}

func runRun(args []string) int {
	fs := flag.NewFlagSet("flaresuite run", flag.ExitOnError)
	var (
		scenario = fs.String("scenario", "", "run only these specs (comma-separated names)")
		axis     = fs.String("axis", "", "run only instances matching these axis values (key=value,...)")
		scale    = fs.String("scale", "quick", `scenario scale: "quick" or "full"`)
		factor   = fs.Float64("factor", 0, "override the scale's duration factor (1 = paper scale)")
		runs     = fs.Int("runs", 0, "override the scale's seeded repetitions per scenario")
		matrix   = fs.Bool("matrix", false, "expand every spec's matrix cross-product")
		workers  = fs.Int("workers", 0, "concurrent scenarios (0 = GOMAXPROCS; summary is identical for every value)")
		out      = fs.String("out", "", "artifact directory (per-scenario traces/reports + summary.json)")
	)
	fs.Parse(args)

	filter, err := parseAxisFilter(*axis)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	opts := flaresuite.Options{
		Scale:      *scale,
		Factor:     *factor,
		Runs:       *runs,
		Workers:    *workers,
		OutDir:     *out,
		Expand:     *matrix,
		Names:      splitNames(*scenario),
		AxisFilter: filter,
	}

	ctx := graceful.NotifyContext(context.Background())
	sum, err := flaresuite.Run(ctx, flaresuite.Default(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}
	fmt.Print(sum.Table())
	fmt.Printf("%d passed, %d failed, %d skipped\n", sum.Passed, sum.Failed, sum.Skipped)
	for _, sc := range sum.Scenarios {
		for _, f := range sc.Failures {
			fmt.Printf("FAIL %s: %s\n", sc.Name, f)
		}
	}
	if *out != "" {
		fmt.Printf("artifacts: %s (summary.json + per-scenario directories)\n", *out)
	}
	if ctx.Err() != nil {
		fmt.Println("interrupted: completed scenarios flushed; unstarted ones skipped")
	}
	if !sum.Ok() {
		return 1
	}
	return 0
}
