package main

import (
	"errors"
	"net/http"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/graceful"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/oneapi"
)

// TestShutdownDrainsBAIRounds delivers SIGTERM (self-signal, like the
// graceful package's tests) while a BAI round is blocked mid-install in
// the PCEF, and asserts the drain waits for the round to complete —
// the round is never dropped mid-install — while new rounds are refused
// with ErrDraining.
func TestShutdownDrainsBAIRounds(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Delta = 1
	handler, _, server := buildHandler(cfg, faults.Config{}, 0, 4)
	defer server.Close()

	// A PCEF that parks the first install until released: the in-flight
	// round the shutdown must wait for.
	inInstall := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	server.SetPCEF(oneapi.PCEFFunc(func(int, float64) error {
		once.Do(func() { close(inInstall) })
		<-release
		return nil
	}))

	if err := server.OpenSession(0, oneapi.SessionRequest{FlowID: 1, LadderBps: has.SimLadder()}); err != nil {
		t.Fatalf("open: %v", err)
	}
	report := oneapi.StatsReport{Flows: map[int]core.FlowStats{1: {Bytes: 2_000_000, RBs: 8000}}}
	roundDone := make(chan error, 1)
	go func() {
		_, err := server.RunBAIReport(0, report, nil)
		roundDone <- err
	}()
	<-inInstall // the round is now in flight, blocked in its install

	srv := &http.Server{Addr: "127.0.0.1:0", Handler: handler}
	served := make(chan error, 1)
	go func() {
		served <- graceful.ServeDrain(srv, 2*time.Second, nil, func(grace time.Duration) {
			server.BeginDrain()
			server.DrainWait(grace / 2)
		})
	}()

	// Release the blocked install only after the drain has begun, so a
	// DrainWait that failed to wait would observe a still-running round.
	go func() {
		for !server.Draining() {
			time.Sleep(5 * time.Millisecond)
		}
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()

	// Let ServeDrain install its signal handler before self-signalling.
	time.Sleep(200 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ServeDrain returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeDrain did not return after SIGTERM")
	}
	select {
	case err := <-roundDone:
		if err != nil {
			t.Fatalf("in-flight BAI round failed during drain: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("in-flight BAI round never completed")
	}
	// The drain refuses new rounds but must have let the old one finish.
	if _, err := server.RunBAIReport(0, report, nil); !errors.Is(err, oneapi.ErrDraining) {
		t.Fatalf("post-drain BAI error = %v, want ErrDraining", err)
	}
	if _, err := server.Open(0, oneapi.SessionRequest{FlowID: 2, LadderBps: has.SimLadder()}); !errors.Is(err, oneapi.ErrDraining) {
		t.Fatalf("post-drain open error = %v, want ErrDraining", err)
	}
}
