package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/oneapi"
)

// TestMetricsEndpoint drives the assembled oneapiserver handler through
// a session-open + stats-report + poll exchange and asserts that
// /metrics serves the solver-latency histogram and the install/retry
// counters, and that /debug/flare returns the recorded event tail.
func TestMetricsEndpoint(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Delta = 1
	handler, rec, server := buildHandler(cfg, faults.Config{}, 0, 0)
	defer server.Close()
	srv := httptest.NewServer(handler)
	defer srv.Close()

	client := oneapi.NewClient(srv.URL, 0, 1, srv.Client())
	if err := client.Open(has.SimLadder(), core.Preferences{}); err != nil {
		t.Fatalf("open: %v", err)
	}
	// One BAI: report per-flow radio accounting, then poll the result.
	report := oneapi.StatsReport{
		Flows:        map[int]core.FlowStats{1: {Bytes: 2_000_000, RBs: 8000}},
		NumDataFlows: 0,
	}
	if _, err := oneapi.ReportStats(srv.Client(), srv.URL, 0, report); err != nil {
		t.Fatalf("report: %v", err)
	}
	if _, ok, err := client.Poll(); err != nil || !ok {
		t.Fatalf("poll: ok=%v err=%v", ok, err)
	}

	body := get(t, srv, "/metrics")
	for _, want := range []string{
		"flare_bai_solves_total 1",
		"flare_installs_total 1",
		"flare_client_retries_total",
		"flare_session_opens_total 1",
		"flare_solver_latency_seconds_bucket",
		"flare_solver_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if rec.Metrics().BAISolves.Load() != 1 {
		t.Fatalf("recorder solver count = %d, want 1", rec.Metrics().BAISolves.Load())
	}

	// The flight recorder's ring must expose the same exchange.
	debug := get(t, srv, "/debug/flare?n=10")
	var payload struct {
		Schema string            `json:"schema"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal([]byte(debug), &payload); err != nil {
		t.Fatalf("/debug/flare not JSON: %v\n%s", err, debug)
	}
	if payload.Schema == "" || len(payload.Events) == 0 {
		t.Fatalf("/debug/flare empty: %s", debug)
	}
	if !strings.Contains(debug, "bai_solve") {
		t.Fatalf("/debug/flare tail missing bai_solve event:\n%s", debug)
	}
}

// TestMetricsReachableDuringBlackout pins the routing contract: the
// observability endpoints bypass the fault middleware, so /metrics
// answers 200 while the API itself is blacked out.
func TestMetricsReachableDuringBlackout(t *testing.T) {
	cfg := core.DefaultConfig()
	fc := faults.Config{Seed: 1, Blackouts: []faults.Window{{From: 0, To: 1 << 40}}}
	handler, _, server := buildHandler(cfg, fc, 0, 0)
	defer server.Close()
	srv := httptest.NewServer(handler)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("get /metrics: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics during blackout: status %d, want 200", resp.StatusCode)
	}
}

func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("get %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", path, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(b)
}
