// Command oneapiserver runs a standalone OneAPI server: the network-side
// half of FLARE, exposed over JSON/HTTP in the shape of the OMA RESTful
// Network APIs. eNodeBs POST statistics reports to it; FLARE plugins
// register sessions and poll assignments.
//
// For resilience testing the whole API can be wrapped in the fault
// injector: -fault-drop / -fault-fail answer a fraction of requests
// with 503, -fault-delay holds them, and -fault-blackout takes the
// server down for scheduled windows (e.g. "60s-90s" after start) —
// exactly the conditions the hardened clients must ride out.
//
// Observability: the server records control-plane decisions into an
// in-process flight recorder (internal/obs) and exposes
//
//	/metrics      Prometheus-text counters and solver-latency histogram
//	/debug/flare  JSON tail of the recorder's ring buffer (?n=64)
//
// Both endpoints sit outside the fault middleware so they stay
// reachable during injected blackouts.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get a draining deadline before the listener closes.
//
// Saturation controls: -admission refuses session opens that would
// break the floor-bitrate budget (HTTP 503 with a Retry-After hint),
// -admission-queue holds that many refused opens for promotion when
// capacity frees, -downgrade sheds ladder ceilings under sustained
// overload, and -objective selects the utility model (eq2 or upf).
//
// Usage:
//
//	oneapiserver [-addr :8480] [-alpha 1.0] [-delta 4] [-bai 1s] [-relax]
//	             [-objective eq2|upf] [-admission] [-admission-queue 8] [-downgrade]
//	             [-fault-drop 0.2] [-fault-fail 0.1] [-fault-delay 0.1]
//	             [-fault-delay-by 2s] [-fault-blackout 60s-90s] [-fault-seed 1]
//	             [-ring 4096] [-version]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/flare-sim/flare/internal/buildinfo"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/faults"
	"github.com/flare-sim/flare/internal/graceful"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/oneapi"
)

// shutdownGrace bounds how long in-flight requests may drain after
// SIGINT/SIGTERM before the server is torn down.
const shutdownGrace = 5 * time.Second

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":8480", "listen address")
		alpha   = flag.Float64("alpha", 1.0, "data/video priority")
		delta   = flag.Int("delta", 4, "Algorithm 1 stability parameter")
		bai     = flag.Duration("bai", time.Second, "bitrate assignment interval")
		relax   = flag.Bool("relax", false, "use the continuous-relaxation solver")
		objName = flag.String("objective", "", "utility objective: eq2 (paper Eq. 2, default) or upf")

		admission = flag.Bool("admission", false, "refuse session opens that would break the floor-bitrate budget (503 + Retry-After)")
		admQueue  = flag.Int("admission-queue", 0, "bounded wait queue for refused opens (0 = refuse immediately)")
		downgrade = flag.Bool("downgrade", false, "shed ladder ceilings under sustained overload instead of stalling flows")
		shards    = flag.Int("shards", 0, "control-plane shard count (0 = default; results are identical at any count, only contention changes)")
		ring      = flag.Int("ring", 0, "flight-recorder ring size in events (0 = default 4096, negative = disabled)")
		version   = flag.Bool("version", false, "print version and exit")

		faultDrop     = flag.Float64("fault-drop", 0, "fraction of requests answered 503 as if lost (0..1)")
		faultFail     = flag.Float64("fault-fail", 0, "fraction of requests answered with an injected server error (0..1)")
		faultDelay    = flag.Float64("fault-delay", 0, "fraction of requests held before handling (0..1)")
		faultDelayBy  = flag.Duration("fault-delay-by", 2*time.Second, "hold time for delayed requests")
		faultBlackout = flag.String("fault-blackout", "", `scheduled blackout windows relative to start, e.g. "60s-90s,300s-330s"`)
		faultSeed     = flag.Uint64("fault-seed", 1, "fault injector seed")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "oneapiserver")
		return 0
	}

	cfg := core.DefaultConfig()
	cfg.Alpha = *alpha
	cfg.Delta = *delta
	cfg.BAI = *bai
	cfg.UseRelaxation = *relax
	if _, ok := core.ObjectiveByName(*objName); !ok {
		fmt.Fprintf(os.Stderr, "oneapiserver: unknown -objective %q (have %s)\n",
			*objName, strings.Join(core.ObjectiveNames(), ", "))
		return 2
	}
	cfg.Objective = *objName
	cfg.AdmissionControl = *admission
	cfg.AdmissionQueue = *admQueue
	cfg.DowngradeLadder = *downgrade

	faultCfg := faults.Config{
		Seed:     *faultSeed,
		DropRate: *faultDrop,
		FailRate: *faultFail,
	}
	if *faultDelay > 0 {
		faultCfg.DelayRate = *faultDelay
		faultCfg.DelayBy = *faultDelayBy
	}
	if *faultBlackout != "" {
		windows, err := parseWindows(*faultBlackout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oneapiserver: %v\n", err)
			return 2
		}
		faultCfg.Blackouts = windows
	}
	if err := faultCfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "oneapiserver: %v\n", err)
		return 2
	}

	handler, _, server := buildHandler(cfg, faultCfg, *ring, *shards)
	defer server.Close()
	if faultCfg.Enabled() {
		fmt.Printf("oneapiserver: fault injection ON (drop=%.2f fail=%.2f delay=%.2f blackouts=%d)\n",
			*faultDrop, *faultFail, *faultDelay, len(faultCfg.Blackouts))
	}

	fmt.Printf("oneapiserver: listening on %s (alpha=%.2f delta=%d bai=%v relax=%v shards=%d)\n",
		*addr, *alpha, *delta, *bai, *relax, server.Shards())
	srv := &http.Server{Addr: *addr, Handler: handler}
	logf := func(format string, args ...any) {
		fmt.Printf("oneapiserver: "+format+"\n", args...)
	}
	err := graceful.ServeDrain(srv, shutdownGrace, logf, func(grace time.Duration) {
		// Refuse new sessions and BAI rounds, then wait for rounds
		// already executing — none is dropped mid-install. The HTTP
		// drain that follows shares the grace budget, so the BAI wait
		// takes at most half of it.
		server.BeginDrain()
		if left := server.DrainWait(grace / 2); left > 0 {
			logf("drain deadline passed with %d BAI round(s) still in flight", left)
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "oneapiserver: %v\n", err)
		return 1
	}
	return 0
}

// buildHandler assembles the full HTTP surface: the OneAPI handler
// (wrapped in the fault middleware when configured) plus the /metrics
// and /debug/flare observability endpoints, which bypass fault
// injection. It returns the mux, the server's flight recorder, and the
// server itself (for the shutdown drain). shards <= 0 uses the oneapi
// default.
func buildHandler(cfg core.Config, faultCfg faults.Config, ringSize, shards int) (http.Handler, *obs.Recorder, *oneapi.Server) {
	rec := obs.New(obs.Options{RingSize: ringSize})
	var server *oneapi.Server
	if shards > 0 {
		server = oneapi.NewServerSharded(cfg, nil, shards)
	} else {
		server = oneapi.NewServer(cfg, nil)
	}
	server.SetRecorder(rec)

	api := http.Handler(oneapi.Handler(server))
	if faultCfg.Enabled() {
		api = faults.Middleware(faults.New(faultCfg), api)
	}

	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.Handle("/metrics", obs.MetricsHandler(rec.Metrics()))
	mux.Handle("/debug/flare", obs.DebugHandler(rec))
	return mux, rec, server
}

// parseWindows parses comma-separated "from-to" blackout windows.
func parseWindows(s string) ([]faults.Window, error) {
	var out []faults.Window
	for _, part := range strings.Split(s, ",") {
		from, to, ok := strings.Cut(strings.TrimSpace(part), "-")
		if !ok {
			return nil, fmt.Errorf("blackout %q: want \"from-to\" (e.g. 60s-90s)", part)
		}
		f, err := time.ParseDuration(from)
		if err != nil {
			return nil, fmt.Errorf("blackout %q: %w", part, err)
		}
		t, err := time.ParseDuration(to)
		if err != nil {
			return nil, fmt.Errorf("blackout %q: %w", part, err)
		}
		out = append(out, faults.Window{From: f, To: t})
	}
	return out, nil
}
