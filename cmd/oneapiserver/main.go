// Command oneapiserver runs a standalone OneAPI server: the network-side
// half of FLARE, exposed over JSON/HTTP in the shape of the OMA RESTful
// Network APIs. eNodeBs POST statistics reports to it; FLARE plugins
// register sessions and poll assignments.
//
// Usage:
//
//	oneapiserver [-addr :8480] [-alpha 1.0] [-delta 4] [-bai 1s] [-relax]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/oneapi"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr  = flag.String("addr", ":8480", "listen address")
		alpha = flag.Float64("alpha", 1.0, "data/video priority")
		delta = flag.Int("delta", 4, "Algorithm 1 stability parameter")
		bai   = flag.Duration("bai", time.Second, "bitrate assignment interval")
		relax = flag.Bool("relax", false, "use the continuous-relaxation solver")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Alpha = *alpha
	cfg.Delta = *delta
	cfg.BAI = *bai
	cfg.UseRelaxation = *relax

	server := oneapi.NewServer(cfg, nil)
	fmt.Printf("oneapiserver: listening on %s (alpha=%.2f delta=%d bai=%v relax=%v)\n",
		*addr, *alpha, *delta, *bai, *relax)
	if err := http.ListenAndServe(*addr, oneapi.Handler(server)); err != nil {
		fmt.Fprintf(os.Stderr, "oneapiserver: %v\n", err)
		return 1
	}
	return 0
}
