// Command mediaserver serves a synthetic DASH presentation over HTTP:
// an MPD at /video/mpd.json and exact-size segments at
// /video/seg/{index}/{representation}.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight segment
// downloads get a draining deadline before the listener closes.
//
// Usage:
//
//	mediaserver [-addr :8090] [-ladder testbed|sim|fine] [-segment 2s]
//	            [-segments 300] [-version]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/flare-sim/flare/internal/buildinfo"
	"github.com/flare-sim/flare/internal/graceful"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/testbed"
)

// shutdownGrace bounds how long in-flight downloads may drain after
// SIGINT/SIGTERM before the server is torn down.
const shutdownGrace = 10 * time.Second

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		ladderName = flag.String("ladder", "testbed", "bitrate ladder: testbed, sim, fine")
		segDur     = flag.Duration("segment", 2*time.Second, "segment duration")
		segments   = flag.Int("segments", 300, "total segments (0 = unbounded)")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "mediaserver")
		return 0
	}

	ladder, ok := map[string]has.Ladder{
		"sim":     has.SimLadder(),
		"testbed": has.TestbedLadder(),
		"fine":    has.FineLadder(),
	}[*ladderName]
	if !ok {
		fmt.Fprintf(os.Stderr, "mediaserver: unknown ladder %q\n", *ladderName)
		return 2
	}

	ms, err := testbed.NewMediaServer(ladder, *segDur, *segments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mediaserver: %v\n", err)
		return 1
	}
	fmt.Printf("mediaserver: listening on %s (%d representations, %v segments x %d)\n",
		*addr, ladder.Len(), *segDur, *segments)
	srv := &http.Server{Addr: *addr, Handler: ms.Handler()}
	err = graceful.Serve(srv, shutdownGrace, func(format string, args ...any) {
		fmt.Printf("mediaserver: "+format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mediaserver: %v\n", err)
		return 1
	}
	return 0
}
