// Command flaretrace ingests a FLARE telemetry trace (the JSONL event
// stream written by flaresim -trace or dumped by the flight recorder)
// and reconstructs the decision-level story behind it: per-BAI solver
// summaries, per-flow decision timelines, fallback causal chains, and
// stall root-cause annotations.
//
// Usage:
//
//	flaretrace trace.jsonl            # full report
//	flaretrace -flow 3 trace.jsonl    # one flow's event-by-event timeline
//	flaresim ... -trace - | flaretrace -   # read the stream from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/flare-sim/flare/internal/buildinfo"
	"github.com/flare-sim/flare/internal/obs"
	"github.com/flare-sim/flare/internal/obs/analyze"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flaretrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		flow    = fs.Int("flow", -1, "drill into one flow: print its full event timeline")
		ttis    = fs.Float64("ttis-per-sec", analyze.DefaultTTIsPerSecond, "TTI stamps per second (LTE: 1000)")
		version = fs.Bool("version", false, "print version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: flaretrace [flags] <trace.jsonl | ->\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stdout, "flaretrace")
		return 0
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	var in io.Reader
	if name := fs.Arg(0); name == "-" {
		in = stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(stderr, "flaretrace: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}

	events, err := obs.ReadJSONL(in)
	if err != nil {
		fmt.Fprintf(stderr, "flaretrace: %v\n", err)
		return 1
	}
	a := analyze.Analyze(events, analyze.Options{TTIsPerSecond: *ttis})

	if *flow >= 0 {
		if err := analyze.WriteFlowTimeline(stdout, a, int32(*flow)); err != nil {
			fmt.Fprintf(stderr, "flaretrace: %v\n", err)
			return 1
		}
		return 0
	}
	if err := analyze.WriteReport(stdout, a); err != nil {
		fmt.Fprintf(stderr, "flaretrace: %v\n", err)
		return 1
	}
	return 0
}
