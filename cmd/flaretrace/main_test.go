package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// trace is a minimal valid flare-trace/1 stream: one solve, one flow's
// clamp/install/deliver, a poll-loss fallback, and its recovery.
const trace = `{"schema":"flare-trace/1"}
{"kind":"flow_start","tti":0,"flow":2}
{"kind":"bai_solve","tti":1000,"cell":0,"flow":-1,"seq":1,"value":12.5,"dur_ns":50000}
{"kind":"install","tti":1000,"flow":2,"level":3,"bps":1000000,"seq":1}
{"kind":"deliver","tti":1000,"flow":2,"level":3,"bps":1000000,"seq":1}
{"kind":"poll_lost","tti":2000,"flow":2}
{"kind":"poll_lost","tti":3000,"flow":2}
{"kind":"poll_lost","tti":4000,"flow":2}
{"kind":"fallback","tti":4000,"flow":2,"reason":"polls","streak":3}
{"kind":"deliver","tti":6000,"flow":2,"level":3,"bps":1000000,"seq":6}
{"kind":"recover","tti":6000,"flow":2}
`

func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReport(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{writeTrace(t)}, nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"BAI solver", "fallback causal chains", "recovered"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFlowTimeline(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-flow", "2", writeTrace(t)}, nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "flow 2 timeline") {
		t.Fatalf("timeline header missing:\n%s", out.String())
	}
}

func TestRunStdin(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-"}, strings.NewReader(trace), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "trace: ") {
		t.Fatalf("no report from stdin:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/trace.jsonl"}, nil, &out, &errOut); code != 1 {
		t.Fatalf("missing-file exit %d, want 1", code)
	}
	bad := strings.NewReader(`{"schema":"other/9"}` + "\n")
	if code := run([]string{"-"}, bad, &out, &errOut); code != 1 {
		t.Fatalf("wrong-schema exit %d, want 1", code)
	}
}

func TestRunVersion(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-version"}, nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out.String(), "flaretrace ") {
		t.Fatalf("version output: %q", out.String())
	}
}
