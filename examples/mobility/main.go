// Mobility: the paper's Figure 7 scenario through the public API —
// vehicular UEs on a random-waypoint course, comparing FLARE with the
// AVIS and FESTIVE baselines on bitrate and stability CDF summaries.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"os"
	"time"

	flare "github.com/flare-sim/flare"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mobility: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Vehicular scenario: 8 mobile video clients, 5 minutes per scheme")
	fmt.Println()
	fmt.Printf("%-8s  %14s  %14s  %10s  %8s\n",
		"scheme", "median bitrate", "p10-p90 Kbps", "changes", "Jain")

	for _, scheme := range []flare.Scheme{flare.SchemeFLARE, flare.SchemeAVIS, flare.SchemeFESTIVE} {
		cfg := flare.DefaultScenario(scheme)
		cfg.Seed = 42
		cfg.Duration = 5 * time.Minute
		cfg.NumVideo = 8
		cfg.Channel = flare.ChannelSpec{Kind: flare.ChannelMobility}

		res, err := flare.RunScenario(cfg)
		if err != nil {
			return err
		}
		rates := res.AvgRates()
		lo, median, hi := percentile(rates, 0.1), percentile(rates, 0.5), percentile(rates, 0.9)
		fmt.Printf("%-8s  %10.0f Kbps  %6.0f-%6.0f  %10.1f  %8.3f\n",
			scheme.String(), median/1000, lo/1000, hi/1000,
			res.MeanChanges(), res.JainOfTputs())
	}

	fmt.Println()
	fmt.Println("FLARE's network-side view lets it hold stable per-client bitrates")
	fmt.Println("while vehicles sweep the cell; the client-side baselines either chase")
	fmt.Println("their throughput samples (changes) or park conservatively (bitrate).")
	return nil
}

// percentile returns the q-quantile of xs without mutating the input.
func percentile(xs []float64, q float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
