// Femtocell: the paper's Section III testbed end-to-end over real HTTP —
// a media server, a OneAPI server, a software eNodeB with the six MAC
// modules, three FLARE-plugin video UEs, and one bulk-data UE, run at
// 20x wall-clock speed (the Table I static scenario, compressed).
//
//	go run ./examples/femtocell
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"github.com/flare-sim/flare/internal/abr"
	"github.com/flare-sim/flare/internal/core"
	"github.com/flare-sim/flare/internal/has"
	"github.com/flare-sim/flare/internal/lte"
	"github.com/flare-sim/flare/internal/oneapi"
	"github.com/flare-sim/flare/internal/testbed"
)

const (
	numVideoUEs    = 3
	scenarioLength = 120 * time.Second // virtual
	speedup        = 20
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "femtocell: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Media server: the testbed ladder, 2 s segments.
	ms, err := testbed.NewMediaServer(has.TestbedLadder(), 2*time.Second, 0)
	if err != nil {
		return err
	}
	mediaSrv := httptest.NewServer(ms.Handler())
	defer mediaSrv.Close()

	// OneAPI server: Table IV parameters, alpha=4 (see DESIGN.md).
	apiCfg := core.DefaultConfig()
	apiCfg.Alpha = 4
	oneAPI := oneapi.NewServer(apiCfg, nil)
	apiSrv := httptest.NewServer(oneapi.Handler(oneAPI))
	defer apiSrv.Close()

	// Software femtocell: static scenario, iTbs 2, one cell.
	enb, err := testbed.NewENodeB(testbed.ENodeBConfig{
		NumUEs:        numVideoUEs + 1,
		InitialITbs:   2,
		Speedup:       speedup,
		OneAPIBaseURL: apiSrv.URL,
		StatsInterval: time.Second,
		NumDataFlows:  1,
		HTTPClient:    apiSrv.Client(),
	})
	if err != nil {
		return err
	}
	defer enb.Stop()
	epc := testbed.NewEPC(enb)

	fmt.Printf("femtocell testbed: %d video UEs + 1 data UE, iTbs=2 (~4.4 Mbps cell), %v at %dx speed\n\n",
		numVideoUEs, scenarioLength, speedup)

	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(float64(scenarioLength)/speedup)+10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	players := make([]*testbed.UEPlayer, numVideoUEs)
	for i := 0; i < numVideoUEs; i++ {
		sess, client, err := epc.Attach(lte.ClassVideo)
		if err != nil {
			return err
		}
		plugin := oneapi.NewClient(apiSrv.URL, 0, sess.BearerID, apiSrv.Client())
		if err := plugin.Open(has.TestbedLadder(), core.Preferences{}); err != nil {
			return err
		}
		defer plugin.Close()

		player, err := testbed.NewUEPlayer(testbed.UEPlayerConfig{
			MediaBaseURL:     mediaSrv.URL,
			MaxBufferSeconds: 30,
			PollAssignment: func() float64 {
				a, ok, err := plugin.Poll()
				if err != nil || !ok {
					return 0
				}
				return a.RateBps
			},
		}, client, abr.NewFlarePlugin(), enb.Clock())
		if err != nil {
			return err
		}
		players[i] = player
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Context cancellation ends the session normally.
			_ = player.Run(ctx)
		}()
	}

	// The data UE: an iperf-style bulk download looping until the end.
	_, dataClient, err := epc.Attach(lte.ClassData)
	if err != nil {
		return err
	}
	var dataBytes int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			n, err := bulkFetch(ctx, dataClient, testbed.SegmentURL(mediaSrv.URL, 0, 7))
			dataBytes += n
			if err != nil {
				return
			}
		}
	}()

	// Progress report once per (virtual) 20 seconds.
	for done := false; !done; {
		select {
		case <-ctx.Done():
			done = true
		case <-time.After(time.Duration(20.0 / speedup * float64(time.Second))):
		}
		if enb.Clock().Seconds() >= scenarioLength.Seconds() {
			cancel()
			done = true
		}
		fmt.Printf("t=%5.0fs:", enb.Clock().Seconds())
		for i, p := range players {
			st := p.Stats()
			fmt.Printf("  UE%d %4.0fk (buf %4.1fs)", i, st.AvgRateBps/1000, st.BufferSeconds)
		}
		fmt.Println()
	}
	wg.Wait()

	elapsed := enb.Clock().Seconds()
	fmt.Println("\nfinal results (cf. paper Table I):")
	for i, p := range players {
		st := p.Stats()
		fmt.Printf("  video UE%d: avg %4.0f Kbps, %d changes, %.1f s stalled, %d segments\n",
			i, st.AvgRateBps/1000, st.Changes, st.StallSeconds, st.Segments)
	}
	fmt.Printf("  data UE:   %4.0f Kbps average\n", float64(dataBytes)*8/elapsed/1000)
	return nil
}

// bulkFetch downloads one object through the shaped client.
func bulkFetch(ctx context.Context, client *http.Client, url string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return io.Copy(io.Discard, resp.Body)
}
