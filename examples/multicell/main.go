// Multicell: one OneAPI server managing several base stations — the
// paper's "a single OneAPI server can manage multiple BSs, though the
// bitrates are calculated independently for each network cell".
//
//	go run ./examples/multicell
package main

import (
	"fmt"
	"os"
	"time"

	flare "github.com/flare-sim/flare"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "multicell: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	server := flare.NewOneAPIServer(flare.DefaultControllerConfig())

	// Three cells with very different conditions share the server: a
	// rich small cell, a congested mid cell, and a poor macro edge.
	mk := func(seed uint64, videos, data, iTbs int) flare.Scenario {
		cfg := flare.DefaultScenario(flare.SchemeFLARE)
		cfg.Seed = seed
		cfg.Duration = 2 * time.Minute
		cfg.NumVideo = videos
		cfg.NumData = data
		cfg.SegmentDuration = 2 * time.Second
		cfg.Ladder = flare.TestbedLadder()
		cfg.Channel = flare.ChannelSpec{Kind: flare.ChannelStatic, StaticITbs: iTbs}
		return cfg
	}
	cells := []flare.Scenario{
		mk(1, 2, 0, 16), // rich small cell
		mk(2, 6, 2, 8),  // congested mid cell
		mk(3, 3, 1, 2),  // cell edge
	}

	fmt.Println("One OneAPI server, three cells, independent per-cell optimisation:")
	fmt.Println()
	res, err := flare.RunMultiCell(server, cells...)
	if err != nil {
		return err
	}
	for i, cell := range res.Cells {
		fmt.Printf("cell %d (%d video, %d data): mean %4.0f Kbps, %.1f changes/client, %.1f s stalled, Jain %.3f, %d BAIs solved\n",
			i, cells[i].NumVideo, cells[i].NumData,
			cell.MeanClientRate()/1000, cell.MeanChanges(),
			cell.TotalStallSeconds(), cell.JainOfTputs(), len(cell.SolveTimesSec))
	}
	fmt.Println()
	fmt.Println("Each cell's bitrates reflect its own radio and load; the shared")
	fmt.Println("server only aggregates the control plane.")
	return nil
}
