// Coexistence: the paper's Figures 10-11 through the public API — video
// and data flows sharing one FLARE cell, sweeping the alpha knob that
// trades data throughput against video bitrate.
//
//	go run ./examples/coexistence
package main

import (
	"fmt"
	"os"
	"time"

	flare "github.com/flare-sim/flare"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "coexistence: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Video/data coexistence under FLARE: 4 video + 4 data flows, alpha sweep")
	fmt.Println()
	fmt.Printf("%-6s  %16s  %16s\n", "alpha", "video mean Kbps", "data mean Kbps")

	for _, alpha := range []float64{0.25, 0.5, 1, 2, 4} {
		cfg := flare.DefaultScenario(flare.SchemeFLARE)
		cfg.Seed = 11
		cfg.Duration = 4 * time.Minute
		cfg.NumVideo = 4
		cfg.NumData = 4
		cfg.Ladder = flare.FineLadder()
		cfg.Channel = flare.ChannelSpec{Kind: flare.ChannelStatic, StaticITbs: 8}
		cfg.Flare.Alpha = alpha

		res, err := flare.RunScenario(cfg)
		if err != nil {
			return err
		}
		var video, data float64
		for _, c := range res.Clients {
			video += c.AvgTputBps
		}
		video /= float64(len(res.Clients))
		for _, d := range res.Data {
			data += d.AvgTputBps
		}
		data /= float64(len(res.Data))
		fmt.Printf("%-6.2f  %16.0f  %16.0f\n", alpha, video/1000, data/1000)
	}

	fmt.Println()
	fmt.Println("Raising alpha shifts cell capacity from video bitrates to data flows")
	fmt.Println("— the single-knob balance the paper's Figure 11 demonstrates, with no")
	fmt.Println("static slicing involved.")
	return nil
}
