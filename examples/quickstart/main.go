// Quickstart: run FLARE and FESTIVE on the same cell and compare the
// paper's headline metrics (average bitrate, stability, rebuffering).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	flare "github.com/flare-sim/flare"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("FLARE quickstart: 4 video clients + 1 data flow, 3 minutes, static cell")
	fmt.Println()

	for _, scheme := range []flare.Scheme{flare.SchemeFLARE, flare.SchemeFESTIVE} {
		cfg := flare.DefaultScenario(scheme)
		cfg.Seed = 7
		cfg.Duration = 3 * time.Minute
		cfg.NumVideo = 4
		cfg.NumData = 1
		cfg.Ladder = flare.TestbedLadder()
		cfg.SegmentDuration = 2 * time.Second
		cfg.Channel = flare.ChannelSpec{Kind: flare.ChannelStatic, StaticITbs: 4}

		res, err := flare.RunScenario(cfg)
		if err != nil {
			return err
		}
		var qoeSum float64
		for _, c := range res.Clients {
			qoeSum += c.QoEScore
		}
		fmt.Printf("%-8s mean bitrate %7.0f Kbps | %4.1f changes/client | %5.1f s stalled | data %7.0f Kbps | QoE %5.0f\n",
			scheme.String(),
			res.MeanClientRate()/1000,
			res.MeanChanges(),
			res.TotalStallSeconds(),
			res.Data[0].AvgTputBps/1000,
			qoeSum/float64(len(res.Clients)),
		)
	}

	fmt.Println()
	fmt.Println("FLARE coordinates bitrates through the network: fewer switches at a")
	fmt.Println("comparable or higher bitrate, with the data flow's share set by the")
	fmt.Println("alpha knob instead of TCP-level contention.")
	return nil
}
