# Build and verification entry points. `make check` is the CI gate:
# static analysis plus the full test suite under the race detector.

GO ?= go

.PHONY: build test vet race check results clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: build, vet, then race-enabled
# tests (which subsume the plain test run).
check: build vet race

# results regenerates the quick-scale experiment outputs in results/.
results:
	$(GO) run ./cmd/flarebench -scale quick -out results

clean:
	$(GO) clean ./...
