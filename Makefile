# Build and verification entry points. `make check` is the CI gate:
# static analysis plus the full test suite under the race detector.

GO ?= go

# Pinned external tool versions. CI installs exactly these via `make
# tools`; locally, the lint/vuln targets run the tool when it is on
# PATH and skip with a notice otherwise (installing needs network).
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: build test vet lint flarevet vuln fuzz-smoke tools race check results suite-quick bench-quick bench-json bench-check bench-multicell-json bench-multicell-check bench-oneapi-json bench-oneapi-check profile trace-demo clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# flarevet is this repo's own analyzer suite (internal/lint): the
# determinism, layering, hotpath, and obsdiscipline invariants, enforced
# mechanically. Zero third-party dependencies, so it always runs.
flarevet:
	$(GO) run ./cmd/flarevet ./...

# lint = flarevet always, plus staticcheck when the binary is available
# (CI installs the pinned version via `make tools`; a dev container
# without network access skips it rather than failing the gate).
lint: flarevet
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (run 'make tools' where network is available)"; \
	fi

# tools installs the pinned external analyzers (network required).
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# vuln scans the module against the Go vulnerability database (network
# required; skipped gracefully when govulncheck is not installed).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (run 'make tools' where network is available)"; \
	fi

# fuzz-smoke gives each fuzz target a short adversarial budget on top of
# the committed seed corpora (which every plain `go test` run replays).
fuzz-smoke:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzMCKP -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzGateApply -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzAdmission -fuzztime 10s
	$(GO) test ./internal/obs -run '^$$' -fuzz FuzzReadJSONL -fuzztime 10s
	$(GO) test ./internal/lint -run '^$$' -fuzz FuzzDirective -fuzztime 10s

race:
	$(GO) test -race ./...

# check is the full verification gate: build, lint (flarevet +
# staticcheck-if-present), vet, then race-enabled tests (which subsume
# the plain test run).
check: build lint vet race

# bench-quick runs every benchmark exactly once — a smoke pass proving
# the bench harness builds and executes, not a timing measurement.
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# bench-json measures the canonical engine benchmark and refreshes the
# committed BENCH_engine.json (the baseline block is preserved).
bench-json:
	$(GO) run ./cmd/flarebench -json BENCH_engine.json

# bench-check is the CI perf gate: fail if the engine benchmark
# regresses more than 20% simsec/sec against the committed numbers.
bench-check:
	$(GO) run ./cmd/flarebench -check-against BENCH_engine.json

# bench-multicell-json measures the multi-cell scaling curve
# (BenchmarkMultiCell at 1/4/16/64 cells) and refreshes the committed
# BENCH_multicell.json.
bench-multicell-json:
	$(GO) run ./cmd/flarebench -json-multicell BENCH_multicell.json

# bench-multicell-check is the multi-cell CI perf gate: fail if any
# point of the scaling curve regresses more than 20% aggregate
# simsec/sec against the committed numbers.
bench-multicell-check:
	$(GO) run ./cmd/flarebench -check-against BENCH_multicell.json

# bench-oneapi-json measures the control-plane load workload (the
# loadgen driver against an in-process sharded OneAPI server,
# best-of-three) and refreshes the committed BENCH_oneapi.json.
bench-oneapi-json:
	$(GO) run ./cmd/flarebench -json-oneapi BENCH_oneapi.json

# bench-oneapi-check is the control-plane CI perf gate: fail if BAI
# rounds/sec regresses more than 20% against the committed numbers.
bench-oneapi-check:
	$(GO) run ./cmd/flarebench -check-against BENCH_oneapi.json

# profile runs the engine benchmark with pprof output (cpu.prof,
# mem.prof) for `go tool pprof`.
profile:
	$(GO) test -run '^$$' -bench BenchmarkEngineTick -benchtime 10x \
		-cpuprofile cpu.prof -memprofile mem.prof .

# trace-demo records a faulted run (the ext-faults blackout shape) with
# telemetry on, then replays its decision narrative — solver summaries,
# fallback causal chains, stall annotations — through flaretrace.
trace-demo:
	$(GO) run ./cmd/flaresim -duration 120s -videos 4 \
		-ctrl-blackout 40s-80s -trace trace-demo.jsonl
	$(GO) run ./cmd/flaretrace trace-demo.jsonl

# results regenerates the quick-scale experiment outputs in results/.
results:
	$(GO) run ./cmd/flarebench -scale quick -out results

# suite-quick runs the whole scenario matrix at quick scale through the
# flaresuite CLI, writing per-scenario traces/reports plus summary.json
# under suite-out/. summary.json is byte-identical at any -workers.
suite-quick:
	$(GO) run ./cmd/flaresuite run -matrix -scale quick -out suite-out

clean:
	$(GO) clean ./...
