# Build and verification entry points. `make check` is the CI gate:
# static analysis plus the full test suite under the race detector.

GO ?= go

.PHONY: build test vet race check results bench-quick bench-json bench-check profile trace-demo clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: build, vet, then race-enabled
# tests (which subsume the plain test run).
check: build vet race

# bench-quick runs every benchmark exactly once — a smoke pass proving
# the bench harness builds and executes, not a timing measurement.
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# bench-json measures the canonical engine benchmark and refreshes the
# committed BENCH_engine.json (the baseline block is preserved).
bench-json:
	$(GO) run ./cmd/flarebench -json BENCH_engine.json

# bench-check is the CI perf gate: fail if the engine benchmark
# regresses more than 20% simsec/sec against the committed numbers.
bench-check:
	$(GO) run ./cmd/flarebench -check-against BENCH_engine.json

# profile runs the engine benchmark with pprof output (cpu.prof,
# mem.prof) for `go tool pprof`.
profile:
	$(GO) test -run '^$$' -bench BenchmarkEngineTick -benchtime 10x \
		-cpuprofile cpu.prof -memprofile mem.prof .

# trace-demo records a faulted run (the ext-faults blackout shape) with
# telemetry on, then replays its decision narrative — solver summaries,
# fallback causal chains, stall annotations — through flaretrace.
trace-demo:
	$(GO) run ./cmd/flaresim -duration 120s -videos 4 \
		-ctrl-blackout 40s-80s -trace trace-demo.jsonl
	$(GO) run ./cmd/flaretrace trace-demo.jsonl

# results regenerates the quick-scale experiment outputs in results/.
results:
	$(GO) run ./cmd/flarebench -scale quick -out results

clean:
	$(GO) clean ./...
