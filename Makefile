# Build and verification entry points. `make check` is the CI gate:
# static analysis plus the full test suite under the race detector.

GO ?= go

.PHONY: build test vet race check results bench-quick clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: build, vet, then race-enabled
# tests (which subsume the plain test run).
check: build vet race

# bench-quick runs every benchmark exactly once — a smoke pass proving
# the bench harness builds and executes, not a timing measurement.
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# results regenerates the quick-scale experiment outputs in results/.
results:
	$(GO) run ./cmd/flarebench -scale quick -out results

clean:
	$(GO) clean ./...
